//! The learned performance predictor (Algorithms 1 and 2).

use crate::engine::{generate_training_examples_resilient, generate_training_examples_seeded};
use crate::features::prediction_statistics;
use crate::interval::{conformal_halfwidth, ScoreInterval, DEFAULT_INTERVAL_ALPHA};
use crate::{CoreError, Metric};
use lvp_corruptions::ErrorGen;
use lvp_dataframe::DataFrame;
use lvp_linalg::DenseMatrix;
use lvp_models::forest::{default_forest_grid, ForestConfig, RandomForestRegressor};
use lvp_models::{BlackBoxModel, Regressor};
use lvp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Configuration for fitting a [`PerformancePredictor`].
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Corrupted copies generated per error generator (the paper repeats
    /// 100 times per column/error combination; generators sample their own
    /// column subsets, so this is the total per generator).
    pub runs_per_generator: usize,
    /// Additional uncorrupted copies of the test data (the `p_err = 0`
    /// regime).
    pub clean_copies: usize,
    /// The scoring function of the black box model.
    pub metric: Metric,
    /// Hyperparameter grid for the random-forest meta-model.
    pub forest_grid: Vec<ForestConfig>,
    /// Cross-validation folds for the meta-model grid search (paper: 5).
    pub cv_folds: usize,
    /// Fan the generation loop out across threads. The output is
    /// bit-identical to the sequential loop (see [`crate::engine`]), so
    /// this only trades wall-clock time for CPU.
    pub parallel: bool,
    /// Minimum fraction of Algorithm 1 generation tasks that must score
    /// successfully for the fit to proceed. `1.0` (the default) demands
    /// every task succeed; lowering it lets fitting against a flaky remote
    /// model skip-and-record terminally failed batches (see
    /// [`generate_batches_resilient`](crate::generate_batches_resilient)).
    pub min_batch_survival: f64,
    /// Miscoverage rate of the predictor's score intervals: a
    /// `1 - interval_alpha` interval (default 0.1 → a 90% interval).
    pub interval_alpha: f64,
    /// Split-conformal calibration stride over the Algorithm 1 training
    /// examples: every `calibration_stride`-th example (in deterministic
    /// task order) is held out to calibrate interval half-widths from the
    /// held-out absolute residuals of an auxiliary forest fitted on the
    /// rest. The *main* meta-regressor still trains on every example, so
    /// point estimates are unchanged. The default of 2 is the standard
    /// equal split of split-conformal calibration. A stride below 2 (or
    /// too few held-out examples) disables conformal widening — intervals
    /// then fall back to bare ensemble quantiles.
    pub calibration_stride: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            runs_per_generator: 100,
            clean_copies: 10,
            metric: Metric::Accuracy,
            forest_grid: default_forest_grid(),
            cv_folds: 5,
            parallel: true,
            min_batch_survival: 1.0,
            interval_alpha: DEFAULT_INTERVAL_ALPHA,
            calibration_stride: 2,
        }
    }
}

impl PredictorConfig {
    /// A cheaper configuration for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            runs_per_generator: 25,
            clean_copies: 5,
            forest_grid: vec![ForestConfig {
                n_trees: 25,
                ..ForestConfig::default()
            }],
            ..Self::default()
        }
    }
}

/// One (features, score) pair recorded during Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingExample {
    /// Percentile featurization ζ of the model outputs on one corrupted
    /// copy.
    pub features: Vec<f64>,
    /// True score ℓ of the model on that copy.
    pub score: f64,
    /// Name of the generator that produced the copy.
    pub generator: String,
}

/// A learned performance predictor `h` for a fixed black box model (§3).
///
/// Deployed alongside the model, it estimates the model's score on unseen,
/// unlabeled serving batches from the distribution of the model's outputs.
pub struct PerformancePredictor {
    model: Arc<dyn BlackBoxModel>,
    regressor: RandomForestRegressor,
    metric: Metric,
    test_score: f64,
    n_feature_dims: usize,
    /// Class count the meta-regressor was trained against; serving output
    /// matrices with a different width are rejected.
    n_classes: usize,
    /// Fingerprint of the held-out test frame's schema, when fitting went
    /// through a frame (`None` for `fit_from_examples`, which never sees
    /// one). Serving frames are checked against it before featurization.
    schema_fingerprint: Option<u64>,
    /// Miscoverage rate of the predictor's score intervals.
    interval_alpha: f64,
    /// Sorted held-out absolute residuals of the split-conformal
    /// calibration slice; `None` when calibration was disabled or the
    /// slice was too small (intervals then carry no conformal widening).
    calibration: Option<Vec<f64>>,
}

/// Minimum held-out examples for conformal calibration: below this the
/// order-statistic half-width is dominated by sampling noise, so the
/// predictor falls back to bare ensemble quantiles instead.
const MIN_CALIBRATION: usize = 8;

/// Checks a serving frame's schema against the fit-time fingerprint.
pub(crate) fn check_schema_fingerprint(
    expected: Option<u64>,
    serving: &DataFrame,
) -> Result<(), CoreError> {
    let actual = serving.schema().fingerprint();
    match expected {
        Some(expected) if expected != actual => Err(CoreError::new(format!(
            "serving frame schema fingerprint {actual:#x} does not match \
             the fit-time schema fingerprint {expected:#x}"
        ))),
        _ => Ok(()),
    }
}

/// Runs the data-generation loop of Algorithm 1 (lines 3–12): applies each
/// generator `runs` times and records `(ζ_corrupt, ℓ_corrupt)` pairs.
///
/// Convenience wrapper over
/// [`generate_training_examples_seeded`](crate::generate_training_examples_seeded):
/// the master seed is drawn from `rng` and the runs are fanned out across
/// threads (deterministically — see [`crate::engine`]).
pub fn generate_training_examples(
    model: &dyn BlackBoxModel,
    test: &DataFrame,
    generators: &[Box<dyn ErrorGen>],
    runs_per_generator: usize,
    clean_copies: usize,
    metric: Metric,
    rng: &mut StdRng,
) -> Result<Vec<TrainingExample>, CoreError> {
    generate_training_examples_seeded(
        model,
        test,
        generators,
        runs_per_generator,
        clean_copies,
        metric,
        rng.gen(),
        true,
    )
}

impl PerformancePredictor {
    /// Algorithm 1: learns a performance predictor for `model` from
    /// synthetically corrupted copies of the held-out `test` data.
    pub fn fit(
        model: Arc<dyn BlackBoxModel>,
        test: &DataFrame,
        generators: &[Box<dyn ErrorGen>],
        config: &PredictorConfig,
        rng: &mut StdRng,
    ) -> Result<Self, CoreError> {
        Self::fit_instrumented(model, test, generators, config, rng, None)
    }

    /// [`Self::fit`] with optional telemetry: the Algorithm 1 generation
    /// loop records its per-phase timings and batch counters into
    /// `registry` (see
    /// [`generate_batches_instrumented`](crate::generate_batches_instrumented)).
    /// The fitted predictor is bit-identical with and without telemetry.
    pub fn fit_instrumented(
        model: Arc<dyn BlackBoxModel>,
        test: &DataFrame,
        generators: &[Box<dyn ErrorGen>],
        config: &PredictorConfig,
        rng: &mut StdRng,
        telemetry: Option<&Registry>,
    ) -> Result<Self, CoreError> {
        if test.n_rows() == 0 {
            return Err(CoreError::new("held-out test data is empty"));
        }
        if generators.is_empty() {
            return Err(CoreError::new("need at least one error generator"));
        }
        // The reference score is not skippable: without it there is no
        // alarm threshold, so a terminal failure here fails the fit (with
        // the typed cause on the error's source chain).
        let test_proba = model.try_predict_proba(test)?;
        let test_score = config.metric.score(&test_proba, test.labels())?;

        let examples = generate_training_examples_resilient(
            model.as_ref(),
            test,
            generators,
            config.runs_per_generator,
            config.clean_copies,
            config.metric,
            rng.gen(),
            config.parallel,
            config.min_batch_survival,
            telemetry,
        )?
        .results;
        let mut predictor = Self::fit_from_examples(model, examples, test_score, config, rng)?;
        predictor.schema_fingerprint = Some(test.schema().fingerprint());
        Ok(predictor)
    }

    /// Trains the meta-regressor on pre-generated examples (used by the
    /// ablation benches to swap featurizations or meta-models).
    pub fn fit_from_examples(
        model: Arc<dyn BlackBoxModel>,
        examples: Vec<TrainingExample>,
        test_score: f64,
        config: &PredictorConfig,
        rng: &mut StdRng,
    ) -> Result<Self, CoreError> {
        if examples.is_empty() {
            return Err(CoreError::new("no training examples generated"));
        }
        if !(config.interval_alpha.is_finite()
            && 0.0 < config.interval_alpha
            && config.interval_alpha < 1.0)
        {
            return Err(CoreError::new(format!(
                "interval_alpha must lie in (0, 1), got {}",
                config.interval_alpha
            )));
        }
        let model_classes = model.n_classes();
        let n_feature_dims = examples[0].features.len();
        let rows: Vec<Vec<f64>> = examples.iter().map(|e| e.features.clone()).collect();
        let x = DenseMatrix::from_rows(&rows)
            .map_err(|e| CoreError::new(format!("feature matrix: {e}")))?;
        let targets: Vec<f64> = examples.iter().map(|e| e.score).collect();
        // The main meta-regressor trains on *every* example, exactly as
        // before intervals existed — point estimates stay bit-identical.
        // Its forest seed is drawn first, the calibration seed after, so
        // adding calibration never perturbs the main forest's RNG stream.
        let mut forest_rng = StdRng::seed_from_u64(rng.gen());
        let (regressor, _) = RandomForestRegressor::fit_cv(
            &x,
            &targets,
            &config.forest_grid,
            config.cv_folds,
            &mut forest_rng,
        )?;
        let calibration = Self::calibrate_residuals(&x, &targets, config, rng)?;
        Ok(Self {
            model,
            n_classes: model_classes,
            regressor,
            metric: config.metric,
            test_score,
            n_feature_dims,
            schema_fingerprint: None,
            interval_alpha: config.interval_alpha,
            calibration,
        })
    }

    /// Split-conformal calibration (Elder et al.): hold out every
    /// `calibration_stride`-th training example, fit an auxiliary forest
    /// on the rest, and record the sorted absolute residuals on the
    /// held-out slice. The examples arrive in deterministic task order
    /// (generator-major, clean stream last — see [`crate::engine`]), so
    /// the index-stride split is bit-identical at any thread count.
    fn calibrate_residuals(
        x: &DenseMatrix,
        targets: &[f64],
        config: &PredictorConfig,
        rng: &mut StdRng,
    ) -> Result<Option<Vec<f64>>, CoreError> {
        let stride = config.calibration_stride;
        if stride < 2 {
            return Ok(None);
        }
        let held_out: Vec<usize> = (0..x.rows()).filter(|i| i % stride == stride - 1).collect();
        let fit_idx: Vec<usize> = (0..x.rows()).filter(|i| i % stride != stride - 1).collect();
        if held_out.len() < MIN_CALIBRATION || fit_idx.is_empty() {
            return Ok(None);
        }
        let aux_config = config
            .forest_grid
            .first()
            .copied()
            .ok_or_else(|| CoreError::new("empty forest grid"))?;
        let mut aux_rng = StdRng::seed_from_u64(rng.gen());
        let x_fit = x.select_rows(&fit_idx);
        let y_fit: Vec<f64> = fit_idx.iter().map(|&i| targets[i]).collect();
        let aux = RandomForestRegressor::fit(&x_fit, &y_fit, &aux_config, &mut aux_rng)?;
        let predictions = aux.predict(&x.select_rows(&held_out));
        let mut residuals: Vec<f64> = predictions
            .iter()
            .zip(held_out.iter().map(|&i| targets[i]))
            .map(|(&p, y)| (p.clamp(0.0, 1.0) - y).abs())
            .collect();
        residuals.sort_by(f64::total_cmp);
        Ok(Some(residuals))
    }

    /// Algorithm 2: estimates the model's score on an unseen, unlabeled
    /// serving batch.
    pub fn predict(&self, serving: &DataFrame) -> Result<f64, CoreError> {
        self.predict_with_outputs(serving)
            .map(|(estimate, _)| estimate)
    }

    /// [`Self::predict`], also returning the black box model's raw output
    /// matrix for the batch. Consumers that need the outputs anyway (e.g.
    /// a monitor running per-class drift tests against reference outputs)
    /// avoid a second `predict_proba` pass.
    pub fn predict_with_outputs(
        &self,
        serving: &DataFrame,
    ) -> Result<(f64, DenseMatrix), CoreError> {
        let proba = self.model_outputs(serving)?;
        let estimate = self.predict_from_outputs(&proba)?;
        Ok((estimate, proba))
    }

    /// The black box model's raw outputs on a non-empty, schema-checked
    /// frame (no score estimation).
    pub fn model_outputs(&self, frame: &DataFrame) -> Result<DenseMatrix, CoreError> {
        if frame.n_rows() == 0 {
            return Err(CoreError::new("serving batch is empty"));
        }
        check_schema_fingerprint(self.schema_fingerprint, frame)?;
        // Fallible path: a remote model's terminal serving failure becomes
        // a CoreError whose source chain carries the typed ModelError, so
        // the monitor can degrade the batch instead of aborting the run.
        Ok(self.model.try_predict_proba(frame)?)
    }

    /// Estimates the score directly from a batch of model outputs.
    ///
    /// The output matrix must have exactly as many class columns as the
    /// model the predictor was fitted against — a mismatched width would
    /// misalign every percentile block the meta-regressor consumes, so it
    /// is rejected (in release builds too, not just under debug assertions).
    pub fn predict_from_outputs(&self, proba: &DenseMatrix) -> Result<f64, CoreError> {
        let features = self.features_from_outputs(proba)?;
        let x = DenseMatrix::from_rows(&[features]).expect("single feature row");
        Ok(self.regressor.predict(&x)[0].clamp(0.0, 1.0))
    }

    /// Estimates the score from streamed sketch state — the fixed-memory
    /// counterpart of [`Self::predict_from_outputs`] for batches built
    /// incrementally via [`crate::BatchSketch::observe_chunk`] (or merged
    /// from shards). Each percentile feature is within the sketches'
    /// proven value-error bound of the exact path.
    pub fn predict_from_sketch(&self, sketch: &crate::BatchSketch) -> Result<f64, CoreError> {
        let features = self.features_from_sketch(sketch)?;
        let x = DenseMatrix::from_rows(&[features]).expect("single feature row");
        Ok(self.regressor.predict(&x)[0].clamp(0.0, 1.0))
    }

    /// Checked featurization of a raw output matrix.
    fn features_from_outputs(&self, proba: &DenseMatrix) -> Result<Vec<f64>, CoreError> {
        if proba.cols() != self.n_classes {
            return Err(CoreError::new(format!(
                "output matrix has {} class columns but the predictor was \
                 fitted for {} classes",
                proba.cols(),
                self.n_classes
            )));
        }
        let features = prediction_statistics(proba);
        if features.len() != self.n_feature_dims {
            return Err(CoreError::new(format!(
                "featurization produced {} dims but the meta-regressor \
                 expects {}",
                features.len(),
                self.n_feature_dims
            )));
        }
        Ok(features)
    }

    /// Checked featurization of streamed sketch state.
    fn features_from_sketch(&self, sketch: &crate::BatchSketch) -> Result<Vec<f64>, CoreError> {
        if sketch.n_classes() != self.n_classes {
            return Err(CoreError::new(format!(
                "batch sketch tracks {} class columns but the predictor was \
                 fitted for {} classes",
                sketch.n_classes(),
                self.n_classes
            )));
        }
        let features = sketch.prediction_statistics();
        if features.len() != self.n_feature_dims {
            return Err(CoreError::new(format!(
                "sketch featurization produced {} dims but the meta-regressor \
                 expects {}",
                features.len(),
                self.n_feature_dims
            )));
        }
        Ok(features)
    }

    /// Algorithm 2 with uncertainty: estimates the model's score on an
    /// unseen serving batch as a calibrated [`ScoreInterval`] — ensemble
    /// quantiles of the forest's per-tree predictions, widened by the
    /// split-conformal half-width calibrated at fit time. The interval's
    /// `point` is bit-identical to what [`Self::predict`] returns.
    pub fn predict_interval(&self, serving: &DataFrame) -> Result<ScoreInterval, CoreError> {
        self.predict_interval_with_outputs(serving)
            .map(|(interval, _)| interval)
    }

    /// [`Self::predict_interval`], also returning the model's raw output
    /// matrix (the interval counterpart of [`Self::predict_with_outputs`]).
    pub fn predict_interval_with_outputs(
        &self,
        serving: &DataFrame,
    ) -> Result<(ScoreInterval, DenseMatrix), CoreError> {
        let proba = self.model_outputs(serving)?;
        let interval = self.predict_interval_from_outputs(&proba)?;
        Ok((interval, proba))
    }

    /// Interval estimate directly from a batch of model outputs (the
    /// interval counterpart of [`Self::predict_from_outputs`]).
    pub fn predict_interval_from_outputs(
        &self,
        proba: &DenseMatrix,
    ) -> Result<ScoreInterval, CoreError> {
        let features = self.features_from_outputs(proba)?;
        Ok(self.interval_from_feature_row(&features))
    }

    /// Interval estimate from streamed sketch state (the interval
    /// counterpart of [`Self::predict_from_sketch`]).
    pub fn predict_interval_from_sketch(
        &self,
        sketch: &crate::BatchSketch,
    ) -> Result<ScoreInterval, CoreError> {
        let features = self.features_from_sketch(sketch)?;
        Ok(self.interval_from_feature_row(&features))
    }

    /// Interval construction from one featurized batch: the point is the
    /// per-tree mean (summed in tree order — bit-identical to the point
    /// APIs), the raw bounds are the `alpha/2` and `1 - alpha/2` ensemble
    /// quantiles, and the conformal half-width widens them symmetrically.
    /// Both the quantile edges and the residual order statistic budget
    /// `alpha/2` miscoverage *per side* (a Bonferroni split of the
    /// two-sided `alpha`), so the widened interval stays valid even though
    /// the half-width is applied to each edge separately. Bounds are
    /// clamped into `[0, 1]` and then snapped outward so the invariant
    /// `lo ≤ point ≤ hi` always holds.
    fn interval_from_feature_row(&self, features: &[f64]) -> ScoreInterval {
        let per_tree = self.regressor.predict_per_tree_row(features);
        let point = (per_tree.iter().sum::<f64>() / per_tree.len() as f64).clamp(0.0, 1.0);
        let mut sorted = per_tree;
        sorted.sort_by(f64::total_cmp);
        let alpha = self.interval_alpha;
        let q_lo = lvp_stats::percentile_sorted(&sorted, 100.0 * (alpha / 2.0));
        let q_hi = lvp_stats::percentile_sorted(&sorted, 100.0 * (1.0 - alpha / 2.0));
        let halfwidth = self
            .calibration
            .as_deref()
            .map_or(0.0, |residuals| conformal_halfwidth(residuals, 0.5 * alpha));
        ScoreInterval {
            point,
            lo: (q_lo - halfwidth).clamp(0.0, 1.0).min(point),
            hi: (q_hi + halfwidth).clamp(0.0, 1.0).max(point),
            alpha,
        }
    }

    /// The model's score on the held-out test data (the reference point for
    /// alarm thresholds).
    pub fn test_score(&self) -> f64 {
        self.test_score
    }

    /// The scoring function the predictor estimates.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Convenience: raises an alarm when the estimated serving score drops
    /// below `(1.0 - threshold) * test_score` — `threshold` is a
    /// *relative* drop fraction of the test score, not an absolute score
    /// difference (a doc/code mismatch in earlier releases).
    #[deprecated(
        note = "a hand-tuned relative threshold must be widened to absorb the \
                predictor's own calibration noise; use predict_interval (or \
                the monitor's interval alarm policy) and check whether \
                test_score sits inside the serving interval instead"
    )]
    pub fn alarm(&self, serving: &DataFrame, threshold: f64) -> Result<bool, CoreError> {
        let estimate = self.predict(serving)?;
        Ok(estimate < (1.0 - threshold) * self.test_score)
    }

    /// Miscoverage rate of the predictor's score intervals.
    pub fn interval_alpha(&self) -> f64 {
        self.interval_alpha
    }

    /// The sorted held-out conformal calibration residuals, when
    /// calibration ran at fit time.
    pub fn calibration_residuals(&self) -> Option<&[f64]> {
        self.calibration.as_deref()
    }

    /// Expected featurization dimensionality.
    pub fn feature_dims(&self) -> usize {
        self.n_feature_dims
    }

    /// Class count the predictor was fitted against.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Fingerprint of the fit-time test schema, when known.
    pub fn schema_fingerprint(&self) -> Option<u64> {
        self.schema_fingerprint
    }

    /// Clones the fitted meta-regressor (persistence support).
    pub(crate) fn regressor_clone(&self) -> RandomForestRegressor {
        self.regressor.clone()
    }

    /// Reassembles a predictor from its parts (persistence support).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        model: Arc<dyn BlackBoxModel>,
        regressor: RandomForestRegressor,
        metric: Metric,
        test_score: f64,
        n_feature_dims: usize,
        schema_fingerprint: Option<u64>,
        interval_alpha: f64,
        calibration: Option<Vec<f64>>,
    ) -> Self {
        Self {
            n_classes: model.n_classes(),
            model,
            regressor,
            metric,
            test_score,
            n_feature_dims,
            schema_fingerprint,
            interval_alpha,
            calibration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_corruptions::{standard_tabular_suite, MissingValues};
    use lvp_dataframe::toy_frame;
    use lvp_models::train_logistic_regression;

    fn fitted_predictor() -> (PerformancePredictor, DataFrame) {
        let df = toy_frame(300);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, rest) = df.split_frac(0.4, &mut rng);
        let (test, serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
        let gens = standard_tabular_suite(test.schema());
        let predictor =
            PerformancePredictor::fit(model, &test, &gens, &PredictorConfig::fast(), &mut rng)
                .unwrap();
        (predictor, serving)
    }

    #[test]
    fn clean_serving_data_scores_near_test_score() {
        let (predictor, serving) = fitted_predictor();
        let estimate = predictor.predict(&serving).unwrap();
        assert!(
            (estimate - predictor.test_score()).abs() < 0.15,
            "estimate {estimate} vs test {}",
            predictor.test_score()
        );
    }

    #[test]
    fn heavy_corruption_lowers_the_estimate() {
        let (predictor, serving) = fitted_predictor();
        // Null out the label-revealing categorical column everywhere.
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        let clean_est = predictor.predict(&serving).unwrap();
        let corrupt_est = predictor.predict(&corrupted).unwrap();
        assert!(
            corrupt_est < clean_est - 0.1,
            "clean {clean_est} vs corrupt {corrupt_est}"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn alarm_fires_only_under_corruption() {
        // Regression test on the deprecated legacy semantics: `threshold`
        // is a *relative* drop fraction of the test score.
        let (predictor, serving) = fitted_predictor();
        assert!(!predictor.alarm(&serving, 0.10).unwrap());
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        assert!(predictor.alarm(&corrupted, 0.10).unwrap());
        // The legacy cutoff is relative: estimate < (1 - t) · test_score.
        let estimate = predictor.predict(&corrupted).unwrap();
        let relative_cutoff = (1.0 - 0.10) * predictor.test_score();
        assert_eq!(
            predictor.alarm(&corrupted, 0.10).unwrap(),
            estimate < relative_cutoff
        );
    }

    #[test]
    fn interval_brackets_the_point_estimate_and_covers_clean_batches() {
        let (predictor, serving) = fitted_predictor();
        let interval = predictor.predict_interval(&serving).unwrap();
        interval.validate().unwrap();
        assert_eq!(interval.alpha, 0.1);
        assert!(interval.lo <= interval.point && interval.point <= interval.hi);
        assert!((0.0..=1.0).contains(&interval.lo) && (0.0..=1.0).contains(&interval.hi));
        // The point is bit-identical to the point API.
        let point = predictor.predict(&serving).unwrap();
        assert_eq!(interval.point.to_bits(), point.to_bits());
        // Conformal calibration ran (fast config: 25·4 + 5 = 105 examples,
        // stride 4 → 26 held out) and widens the interval.
        let residuals = predictor.calibration_residuals().unwrap();
        assert!(residuals.len() >= 20, "{}", residuals.len());
        assert!(residuals.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(interval.width() > 0.0);
        // The calibrated 90% interval covers the test score on clean data —
        // the honest version of the old hand-tuned threshold contract.
        assert!(
            interval.contains(predictor.test_score()),
            "test score {} outside [{}, {}]",
            predictor.test_score(),
            interval.lo,
            interval.hi
        );
    }

    #[test]
    fn corruption_pushes_the_interval_below_the_test_score() {
        let (predictor, serving) = fitted_predictor();
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        let clean = predictor.predict_interval(&serving).unwrap();
        let corrupt = predictor.predict_interval(&corrupted).unwrap();
        assert!(corrupt.point < clean.point - 0.1);
        assert!(
            !corrupt.contains(predictor.test_score()),
            "corrupted interval [{}, {}] still covers test score {}",
            corrupt.lo,
            corrupt.hi,
            predictor.test_score()
        );
    }

    #[test]
    fn interval_paths_agree_on_outputs_and_sketches() {
        let (predictor, serving) = fitted_predictor();
        let (interval, proba) = predictor.predict_interval_with_outputs(&serving).unwrap();
        let from_outputs = predictor.predict_interval_from_outputs(&proba).unwrap();
        assert_eq!(interval, from_outputs);
        // The sketch path answers within the sketch error bound, with the
        // same invariants.
        let sketch = crate::BatchSketch::from_outputs(&proba);
        let from_sketch = predictor.predict_interval_from_sketch(&sketch).unwrap();
        from_sketch.validate().unwrap();
        assert!((from_sketch.point - interval.point).abs() < 0.05);
        // Wrong-width outputs are rejected like on the point path.
        let wide = DenseMatrix::from_vec(4, 3, vec![1.0 / 3.0; 12]).unwrap();
        assert!(predictor.predict_interval_from_outputs(&wide).is_err());
    }

    #[test]
    fn disabling_calibration_falls_back_to_ensemble_quantiles() {
        let df = toy_frame(300);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, rest) = df.split_frac(0.4, &mut rng);
        let (test, serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
        let gens = standard_tabular_suite(test.schema());
        let config = PredictorConfig {
            calibration_stride: 0,
            ..PredictorConfig::fast()
        };
        let predictor = PerformancePredictor::fit(model, &test, &gens, &config, &mut rng).unwrap();
        assert!(predictor.calibration_residuals().is_none());
        let interval = predictor.predict_interval(&serving).unwrap();
        interval.validate().unwrap();
        assert!(interval.lo <= interval.point && interval.point <= interval.hi);
    }

    #[test]
    fn invalid_interval_alpha_is_rejected_at_fit_time() {
        let df = toy_frame(80);
        let mut rng = StdRng::seed_from_u64(5);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&df, &mut rng).unwrap());
        let gens = standard_tabular_suite(df.schema());
        for alpha in [0.0, 1.0, f64::NAN] {
            let config = PredictorConfig {
                interval_alpha: alpha,
                ..PredictorConfig::fast()
            };
            let err = match PerformancePredictor::fit(
                Arc::clone(&model),
                &df,
                &gens,
                &config,
                &mut rng,
            ) {
                Err(err) => err,
                Ok(_) => panic!("alpha {alpha} accepted"),
            };
            assert!(err.message.contains("interval_alpha"), "{err}");
        }
    }

    #[test]
    fn predictions_are_clamped_to_unit_interval() {
        let (predictor, serving) = fitted_predictor();
        let est = predictor.predict(&serving).unwrap();
        assert!((0.0..=1.0).contains(&est));
    }

    #[test]
    fn rejects_empty_inputs() {
        let df = toy_frame(50);
        let mut rng = StdRng::seed_from_u64(2);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&df, &mut rng).unwrap());
        let empty = df.select_rows(&[]);
        let gens = standard_tabular_suite(df.schema());
        assert!(PerformancePredictor::fit(
            model.clone(),
            &empty,
            &gens,
            &PredictorConfig::fast(),
            &mut rng
        )
        .is_err());
        assert!(
            PerformancePredictor::fit(model, &df, &[], &PredictorConfig::fast(), &mut rng).is_err()
        );
    }

    #[test]
    fn wrong_class_count_outputs_are_rejected_in_release_builds_too() {
        let (predictor, _) = fitted_predictor();
        // Three class columns against a two-class predictor: previously a
        // debug_assert, now a real error in every build profile.
        let wide = DenseMatrix::from_vec(4, 3, vec![1.0 / 3.0; 12]).unwrap();
        assert!(predictor.predict_from_outputs(&wide).is_err());
        let narrow = DenseMatrix::from_vec(4, 1, vec![1.0; 4]).unwrap();
        assert!(predictor.predict_from_outputs(&narrow).is_err());
    }

    #[test]
    fn mismatched_serving_schema_is_rejected() {
        let (predictor, serving) = fitted_predictor();
        assert!(predictor.schema_fingerprint().is_some());
        // A frame with a different schema (same column types, one column
        // renamed) must be rejected before the model ever sees it.
        use lvp_dataframe::{CellValue, ColumnType, DataFrameBuilder, Field, Schema};
        let schema = Schema::new(vec![
            Field::new("x_renamed", ColumnType::Numeric),
            Field::new("c", ColumnType::Categorical),
        ])
        .unwrap();
        let mut b = DataFrameBuilder::new(schema, vec!["no".into(), "yes".into()]);
        for i in 0..40u32 {
            b.push_row(
                vec![CellValue::Num(f64::from(i)), CellValue::Cat("even".into())],
                i % 2,
            )
            .unwrap();
        }
        let other = b.finish().unwrap();
        let err = predictor.predict(&other).unwrap_err();
        assert!(err.message.contains("schema fingerprint"), "{err}");
        // The matching frame still passes.
        assert!(predictor.predict(&serving).is_ok());
    }

    #[test]
    fn training_examples_carry_generator_names() {
        let df = toy_frame(80);
        let mut rng = StdRng::seed_from_u64(3);
        let model = train_logistic_regression(&df, &mut rng).unwrap();
        let gens: Vec<Box<dyn ErrorGen>> =
            vec![Box::new(MissingValues::all_categorical(df.schema()))];
        let ex = generate_training_examples(
            model.as_ref(),
            &df,
            &gens,
            5,
            2,
            Metric::Accuracy,
            &mut rng,
        )
        .unwrap();
        assert_eq!(ex.len(), 7);
        assert_eq!(ex[0].generator, "missing_values");
        assert_eq!(ex[6].generator, "clean");
        assert!(ex.iter().all(|e| (0.0..=1.0).contains(&e.score)));
        assert!(ex.iter().all(|e| e.features.len() == 42));
    }
}
