//! Calibrated score intervals — the serving stack's central estimate type.
//!
//! A point estimate of the serving score carries no notion of its own
//! uncertainty, so alarm thresholds on it must be hand-tuned wide enough
//! to absorb calibration noise. Following Elder et al. (*Learning
//! Prediction Intervals for Model Performance*), the predictor instead
//! emits a [`ScoreInterval`]: ensemble quantiles of the random forest's
//! per-tree predictions, widened by a split-conformal half-width
//! calibrated on held-out corrupted copies (see
//! [`conformal_halfwidth`]). The monitor's interval alarm policy then
//! asks the calibration-free question "does the retained test score still
//! sit inside the serving interval?" instead of "did the point estimate
//! drop below a tuned cutoff?".

use crate::CoreError;
use serde::{Deserialize, Serialize};

/// Default miscoverage rate `alpha` of predictor intervals: a 90% interval.
pub const DEFAULT_INTERVAL_ALPHA: f64 = 0.1;

/// A calibrated interval estimate of the model's score on one serving
/// batch: the nominal coverage is `1 - alpha`.
///
/// Serializes losslessly except that the non-finite bounds of a degraded
/// interval travel as JSON `null` and come back as `NaN` (the vendored
/// serde maps non-finite floats through `null` — the same convention as
/// [`BatchReport::estimate`](crate::BatchReport::estimate)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreInterval {
    /// Point estimate of the serving score (the ensemble mean — identical
    /// to what the point APIs return).
    pub point: f64,
    /// Lower interval bound.
    pub lo: f64,
    /// Upper interval bound.
    pub hi: f64,
    /// Miscoverage rate: the interval targets `1 - alpha` coverage.
    pub alpha: f64,
}

impl ScoreInterval {
    /// A degraded interval: all bounds withheld (NaN), `alpha` retained.
    /// Marks batches whose scoring failed terminally, mirroring the NaN
    /// estimate of degraded point reports.
    pub fn degraded(alpha: f64) -> Self {
        Self {
            point: f64::NAN,
            lo: f64::NAN,
            hi: f64::NAN,
            alpha,
        }
    }

    /// Whether this is a degraded (all-NaN) interval.
    pub fn is_degraded(&self) -> bool {
        self.point.is_nan() && self.lo.is_nan() && self.hi.is_nan()
    }

    /// Interval width `hi - lo` — the system's self-reported uncertainty.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Interval midpoint `(lo + hi) / 2` — the value the monitor's EWMA
    /// smooths under the interval alarm policy.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `value` lies inside the closed interval `[lo, hi]`.
    /// Always `false` for a degraded interval (NaN compares false).
    pub fn contains(&self, value: f64) -> bool {
        self.lo <= value && value <= self.hi
    }

    /// The same interval shifted so its midpoint sits at `midpoint`,
    /// preserving the half-widths on either side. Used for the smoothed
    /// violation check: the EWMA smooths the midpoint, and the batch's own
    /// width is re-applied around it.
    pub fn recentered(&self, midpoint: f64) -> Self {
        let shift = midpoint - self.midpoint();
        Self {
            point: self.point + shift,
            lo: self.lo + shift,
            hi: self.hi + shift,
            alpha: self.alpha,
        }
    }

    /// Validates the interval invariants for externally supplied
    /// intervals: either all of `point`/`lo`/`hi` are finite with
    /// `lo ≤ point ≤ hi`, or all three are NaN (a degraded interval);
    /// `alpha` must be finite and in `(0, 1)` either way.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.alpha.is_finite() && 0.0 < self.alpha && self.alpha < 1.0) {
            return Err(CoreError::new(format!(
                "interval alpha must lie in (0, 1), got {}",
                self.alpha
            )));
        }
        if self.is_degraded() {
            return Ok(());
        }
        if !(self.point.is_finite() && self.lo.is_finite() && self.hi.is_finite()) {
            return Err(CoreError::new(format!(
                "interval bounds must be all finite or all NaN, got \
                 [lo {}, point {}, hi {}]",
                self.lo, self.point, self.hi
            )));
        }
        if !(self.lo <= self.point && self.point <= self.hi) {
            return Err(CoreError::new(format!(
                "interval bounds must satisfy lo ≤ point ≤ hi, got \
                 [lo {}, point {}, hi {}]",
                self.lo, self.point, self.hi
            )));
        }
        Ok(())
    }
}

/// The split-conformal half-width at miscoverage `alpha` from a sorted
/// slice of held-out absolute residuals: the order statistic of rank
/// `⌈(n + 1)(1 − alpha)⌉` (clamped to `n`), the standard finite-sample
/// correction that makes `prediction ± halfwidth` cover a fresh residual
/// with probability at least `1 − alpha` under exchangeability.
///
/// Returns 0.0 on an empty slice (no calibration evidence — the caller
/// falls back to bare ensemble quantiles). On a fixed residual
/// distribution the returned rank fraction `⌈(n+1)(1−alpha)⌉ / n`
/// decreases toward `1 − alpha` as `n` grows, so the half-width shrinks
/// monotonically with the calibration budget — pinned by the width
/// property tests.
pub fn conformal_halfwidth(sorted_residuals: &[f64], alpha: f64) -> f64 {
    let n = sorted_residuals.len();
    if n == 0 {
        return 0.0;
    }
    let rank = ((n + 1) as f64 * (1.0 - alpha)).ceil() as usize;
    sorted_residuals[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(lo: f64, point: f64, hi: f64) -> ScoreInterval {
        ScoreInterval {
            point,
            lo,
            hi,
            alpha: 0.1,
        }
    }

    #[test]
    fn width_midpoint_and_containment() {
        let iv = interval(0.6, 0.7, 0.9);
        assert!((iv.width() - 0.3).abs() < 1e-15);
        assert!((iv.midpoint() - 0.75).abs() < 1e-15);
        assert!(iv.contains(0.6) && iv.contains(0.9) && iv.contains(0.75));
        assert!(!iv.contains(0.59) && !iv.contains(0.91));
    }

    #[test]
    fn recentered_preserves_width_and_offsets() {
        let iv = interval(0.6, 0.65, 0.9);
        let shifted = iv.recentered(0.5);
        assert!((shifted.midpoint() - 0.5).abs() < 1e-15);
        assert!((shifted.width() - iv.width()).abs() < 1e-15);
        assert!((shifted.point - shifted.lo) - (iv.point - iv.lo) < 1e-15);
        assert_eq!(shifted.alpha, iv.alpha);
    }

    #[test]
    fn validation_accepts_consistent_and_degraded_rejects_mixed() {
        assert!(interval(0.6, 0.7, 0.9).validate().is_ok());
        assert!(interval(0.7, 0.7, 0.7).validate().is_ok());
        assert!(ScoreInterval::degraded(0.1).validate().is_ok());
        // Out-of-order bounds.
        let err = interval(0.9, 0.7, 0.6).validate().unwrap_err();
        assert!(err.message.contains("lo ≤ point ≤ hi"), "{err}");
        // Point outside [lo, hi].
        assert!(interval(0.6, 0.95, 0.9).validate().is_err());
        // Mixed finite/NaN bounds.
        let mut iv = interval(0.6, f64::NAN, 0.9);
        let err = iv.validate().unwrap_err();
        assert!(err.message.contains("all finite or all NaN"), "{err}");
        iv = interval(f64::NAN, 0.7, f64::NAN);
        assert!(iv.validate().is_err());
        // Infinite bounds are as unusable as NaN ones.
        assert!(interval(f64::NEG_INFINITY, 0.7, 0.9).validate().is_err());
        // Bad alpha fails even on otherwise-valid bounds.
        for alpha in [0.0, 1.0, -0.1, f64::NAN] {
            let iv = ScoreInterval {
                alpha,
                ..interval(0.6, 0.7, 0.9)
            };
            assert!(iv.validate().is_err(), "alpha {alpha} accepted");
        }
    }

    #[test]
    fn degraded_interval_contains_nothing() {
        let iv = ScoreInterval::degraded(0.1);
        assert!(iv.is_degraded());
        assert!(!iv.contains(0.5));
        assert!(iv.width().is_nan() && iv.midpoint().is_nan());
    }

    #[test]
    fn conformal_halfwidth_is_the_finite_sample_order_statistic() {
        // n = 9, alpha = 0.1: rank ⌈10 · 0.9⌉ = 9 → the maximum.
        let residuals: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
        assert_eq!(conformal_halfwidth(&residuals, 0.1), 0.9);
        // n = 19, alpha = 0.1: rank ⌈20 · 0.9⌉ = 18 of 19.
        let residuals: Vec<f64> = (1..=19).map(|i| i as f64).collect();
        assert_eq!(conformal_halfwidth(&residuals, 0.1), 18.0);
        // Large alpha picks a low order statistic, never below the first.
        assert_eq!(conformal_halfwidth(&residuals, 0.99), 1.0);
        // No calibration evidence → no widening.
        assert_eq!(conformal_halfwidth(&[], 0.1), 0.0);
    }

    #[test]
    fn conformal_halfwidth_shrinks_as_calibration_grows() {
        // Deterministic quantile grids of the same Exp-like residual
        // distribution: at fixed alpha the rank fraction ⌈(n+1)·0.9⌉/n
        // decreases toward 0.9 as n grows, so the selected order statistic
        // of a fixed distribution is non-increasing in n.
        let quantile = |u: f64| -> f64 { -(1.0 - u).ln() };
        let grid = |n: usize| -> Vec<f64> {
            (1..=n)
                .map(|i| quantile(i as f64 / (n + 1) as f64))
                .collect()
        };
        let widths: Vec<f64> = [20, 40, 80, 160, 320]
            .iter()
            .map(|&n| conformal_halfwidth(&grid(n), 0.1))
            .collect();
        for pair in widths.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-12,
                "width grew with calibration: {widths:?}"
            );
        }
        assert!(widths[0] > widths[widths.len() - 1], "{widths:?}");
    }

    #[test]
    fn interval_serde_round_trips_with_nan_as_null() {
        let iv = interval(0.6, 0.7, 0.9);
        let json = serde_json::to_string(&iv).unwrap();
        let back: ScoreInterval = serde_json::from_str(&json).unwrap();
        assert_eq!(back, iv);
        let degraded = ScoreInterval::degraded(0.1);
        let json = serde_json::to_string(&degraded).unwrap();
        assert!(json.contains("null"), "{json}");
        let back: ScoreInterval = serde_json::from_str(&json).unwrap();
        assert!(back.is_degraded());
        assert_eq!(back.alpha, 0.1);
    }
}
