//! Deterministic parallel batch engine for the Algorithm 1/2 generation
//! loops.
//!
//! Algorithm 1 applies every error generator `runs_per_generator` times to
//! (subsamples of) the held-out test data; each run is independent of all
//! others, so the loop is embarrassingly parallel. The catch is
//! reproducibility: threading one mutable RNG through a parallel loop makes
//! the output depend on the interleaving. This module instead derives a
//! *per-run* RNG from `(master_seed, generator_idx, run_idx)` so every run
//! is self-contained, and collects results in task order. The parallel
//! output is therefore bit-identical to the sequential output at any thread
//! count (asserted by `tests/determinism.rs`).
//!
//! The clean-copy stream (`p_err = 0`) is addressed as a virtual generator
//! at index `generators.len()`.

use crate::features::prediction_statistics;
use crate::predictor::TrainingExample;
use crate::{CoreError, Metric};
use lvp_corruptions::ErrorGen;
use lvp_dataframe::DataFrame;
use lvp_linalg::DenseMatrix;
use lvp_models::BlackBoxModel;
use lvp_telemetry::{Counter, Histogram, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::time::Instant;

/// Derives the RNG seed for one (generator, run) task.
///
/// Mixes the three inputs through two rounds of the splitmix64 finalizer so
/// that neighbouring task coordinates produce statistically unrelated
/// streams. The mapping is a pure function — the cornerstone of the
/// engine's thread-count-independent determinism.
pub fn derive_run_seed(master_seed: u64, generator_idx: usize, run_idx: usize) -> u64 {
    let mut z = master_seed
        ^ (generator_idx as u64).wrapping_mul(0xA24B_AED4_963E_E407)
        ^ (run_idx as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25);
    for _ in 0..2 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// Lower bound for the random subsample size used when corrupting the test
/// data (Algorithm 1 corrupts random-size subsamples so the regressor sees
/// the batch-size regime it will face at serving time).
///
/// For reasonable test sets this is `max(n/3, 10)`; for tiny frames that
/// clamp would collapse to `lo == n` (no size variation at all), so below
/// 10 rows it falls back to half the frame.
pub fn subsample_lower_bound(n_rows: usize) -> usize {
    let lo = (n_rows / 3).max(10).min(n_rows);
    if lo >= n_rows {
        // Tiny frame: the standard clamp leaves no room for variation.
        (n_rows / 2).max(1)
    } else {
        lo
    }
}

/// One corrupted (or clean) batch produced by the generation loop, handed
/// to the caller's featurization closure.
pub struct GeneratedBatch<'a> {
    /// The black box model's outputs on the batch.
    pub proba: DenseMatrix,
    /// The model's true score on the batch under the configured metric.
    pub score: f64,
    /// Name of the generator that produced the batch (`"clean"` for the
    /// clean-copy stream).
    pub generator: &'a str,
}

/// A generation task whose batch could not be scored (the serving model
/// failed terminally), recorded instead of aborting the whole loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedBatch {
    /// Name of the generator whose run was skipped (`"clean"` for the
    /// clean-copy stream).
    pub generator: String,
    /// Run index within the generator's stream.
    pub run: usize,
    /// The terminal serving failure.
    pub error: lvp_models::ModelError,
}

/// Result of a fault-tolerant generation loop: the featurized batches that
/// survived plus a record of every skipped task, both in deterministic
/// task order.
#[derive(Debug)]
pub struct GenerationOutcome<T> {
    /// Featurized batches whose scoring succeeded, in task order.
    pub results: Vec<T>,
    /// Tasks whose scoring failed terminally, in task order.
    pub skipped: Vec<SkippedBatch>,
}

impl<T> GenerationOutcome<T> {
    /// Fraction of generation tasks that produced a usable batch.
    pub fn survival_fraction(&self) -> f64 {
        let total = self.results.len() + self.skipped.len();
        if total == 0 {
            1.0
        } else {
            self.results.len() as f64 / total as f64
        }
    }
}

/// Runs the data-generation loop of Algorithm 1 (lines 3–12) and maps each
/// generated batch through `featurize`.
///
/// Results are ordered generator-major (all runs of generator 0, then all
/// runs of generator 1, …, then the clean copies), identically for the
/// sequential and parallel paths: each task seeds its own [`StdRng`] from
/// [`derive_run_seed`] and the parallel collect preserves task order.
///
/// Fails fast with a [`CoreError`] when `metric` cannot score the model's
/// output shape (e.g. [`Metric::Auc`] with a non-binary model), before any
/// batch is generated.
///
/// Models that cache featurization internally (e.g. `PipelineModel`'s
/// identity-keyed encoding cache) stay deterministic here: cached column
/// blocks are bit-identical to freshly encoded ones, so `predict_proba` —
/// and therefore every generated batch — is the same on any thread
/// schedule, cache state notwithstanding.
#[allow(clippy::too_many_arguments)]
pub fn generate_batches_seeded<T, F>(
    model: &dyn BlackBoxModel,
    test: &DataFrame,
    generators: &[Box<dyn ErrorGen>],
    runs_per_generator: usize,
    clean_copies: usize,
    metric: Metric,
    master_seed: u64,
    parallel: bool,
    featurize: F,
) -> Result<Vec<T>, CoreError>
where
    T: Send,
    F: Fn(GeneratedBatch<'_>) -> T + Sync,
{
    generate_batches_instrumented(
        model,
        test,
        generators,
        runs_per_generator,
        clean_copies,
        metric,
        master_seed,
        parallel,
        None,
        featurize,
    )
}

/// Pre-resolved registry handles for the generation loop. Resolved once
/// before the fan-out; each task touches only atomics.
struct EngineMetrics {
    /// `engine.batches_generated` — total batches (corrupt + clean).
    batches: Counter,
    /// `engine.batches_clean` — clean-copy batches only.
    clean: Counter,
    /// `engine.seeds_used` — per-run RNG seeds derived (== tasks run).
    seeds: Counter,
    /// `engine.batches_skipped` — tasks dropped because scoring failed
    /// terminally (resilient path only).
    skipped: Counter,
    /// `engine.generate_phase` — subsample + corrupt wall time per batch.
    generate: Histogram,
    /// `engine.score_phase` — model inference + metric wall time per batch.
    score: Histogram,
    /// `engine.featurize_phase` — featurize-closure wall time per batch.
    featurize: Histogram,
}

impl EngineMetrics {
    fn resolve(registry: &Registry) -> Self {
        Self {
            batches: registry.counter("engine.batches_generated"),
            clean: registry.counter("engine.batches_clean"),
            seeds: registry.counter("engine.seeds_used"),
            skipped: registry.counter("engine.batches_skipped"),
            generate: registry.histogram("engine.generate_phase"),
            score: registry.histogram("engine.score_phase"),
            featurize: registry.histogram("engine.featurize_phase"),
        }
    }
}

/// [`generate_batches_seeded`] with optional telemetry.
///
/// When `telemetry` is `Some`, the engine records per-phase wall-clock
/// histograms (`engine.generate_phase`, `engine.score_phase`,
/// `engine.featurize_phase`), batch/seed counters, and — after the loop —
/// flushes the model's buffered metrics via
/// [`BlackBoxModel::publish_telemetry`]. Counter and histogram-count totals
/// are identical at any thread count (atomic adds commute); histogram
/// *buckets* hold wall-clock data and are excluded from deterministic
/// snapshot views. Telemetry never touches an RNG, so the generated batches
/// are bit-identical with and without it.
#[allow(clippy::too_many_arguments)]
pub fn generate_batches_instrumented<T, F>(
    model: &dyn BlackBoxModel,
    test: &DataFrame,
    generators: &[Box<dyn ErrorGen>],
    runs_per_generator: usize,
    clean_copies: usize,
    metric: Metric,
    master_seed: u64,
    parallel: bool,
    telemetry: Option<&Registry>,
    featurize: F,
) -> Result<Vec<T>, CoreError>
where
    T: Send,
    F: Fn(GeneratedBatch<'_>) -> T + Sync,
{
    let outcome = generate_batches_resilient(
        model,
        test,
        generators,
        runs_per_generator,
        clean_copies,
        metric,
        master_seed,
        parallel,
        1.0,
        telemetry,
        featurize,
    )?;
    Ok(outcome.results)
}

/// Fault-tolerant variant of [`generate_batches_instrumented`]: a task
/// whose scoring fails terminally (the serving model's
/// [`BlackBoxModel::try_predict_proba`] returns an error even after its own
/// retries) is *skipped and recorded* instead of panicking, and the loop
/// succeeds as long as at least `min_survival` of its tasks produce a
/// usable batch.
///
/// `min_survival` is a fraction in `[0, 1]`; `1.0` demands every task
/// succeed (the first failure aborts with a [`CoreError`] whose source
/// chain carries the typed [`lvp_models::ModelError`]). Skip decisions
/// inherit the engine's determinism: with a content-keyed fault schedule
/// (see `lvp-models`' `FaultPlan`) the same seed skips the same tasks at
/// any thread count, and both `results` and `skipped` are collected in
/// task order.
#[allow(clippy::too_many_arguments)]
pub fn generate_batches_resilient<T, F>(
    model: &dyn BlackBoxModel,
    test: &DataFrame,
    generators: &[Box<dyn ErrorGen>],
    runs_per_generator: usize,
    clean_copies: usize,
    metric: Metric,
    master_seed: u64,
    parallel: bool,
    min_survival: f64,
    telemetry: Option<&Registry>,
    featurize: F,
) -> Result<GenerationOutcome<T>, CoreError>
where
    T: Send,
    F: Fn(GeneratedBatch<'_>) -> T + Sync,
{
    if !(0.0..=1.0).contains(&min_survival) {
        return Err(CoreError::new(format!(
            "min_survival must lie in [0, 1], got {min_survival}"
        )));
    }
    metric.validate_n_classes(model.n_classes())?;
    let clean_stream = generators.len();
    let tasks: Vec<(usize, usize)> = (0..generators.len())
        .flat_map(|g| (0..runs_per_generator).map(move |r| (g, r)))
        .chain((0..clean_copies).map(|r| (clean_stream, r)))
        .collect();
    let metrics = telemetry.map(EngineMetrics::resolve);
    let metrics = metrics.as_ref();

    let run_one = |(g, r): (usize, usize)| -> Result<T, SkippedBatch> {
        let mut rng = StdRng::seed_from_u64(derive_run_seed(master_seed, g, r));
        if let Some(m) = metrics {
            m.seeds.inc();
        }
        let started = Instant::now();
        let (batch_frame, generator_name) = if g < clean_stream {
            // Corrupt a random-size subsample so the learned regressor sees
            // the same batch-size regime it will face at serving time
            // (percentile features are order statistics and therefore
            // batch-size sensitive).
            let lo = subsample_lower_bound(test.n_rows());
            let base = test.sample_n(rng.gen_range(lo..=test.n_rows()), &mut rng);
            let corrupted = generators[g].corrupt_with_model(&base, Some(model), &mut rng);
            (corrupted, generators[g].name())
        } else {
            // Clean copies teach the meta-model the error-free regime; the
            // rows are still subsampled so the batch-size distribution
            // varies.
            let n = test.n_rows();
            let take = rng.gen_range((n / 2).max(1)..=n);
            (test.sample_n(take, &mut rng), "clean")
        };
        let generated = Instant::now();
        let proba = match model.try_predict_proba(&batch_frame) {
            Ok(proba) => proba,
            Err(error) => {
                if let Some(m) = metrics {
                    m.skipped.inc();
                }
                return Err(SkippedBatch {
                    generator: generator_name.to_string(),
                    run: r,
                    error,
                });
            }
        };
        let batch = GeneratedBatch {
            score: metric
                .score(&proba, batch_frame.labels())
                .expect("metric validated against the model's class count above"),
            proba,
            generator: generator_name,
        };
        if let Some(m) = metrics {
            m.generate.record(generated - started);
            m.score.record(generated.elapsed());
            if g >= clean_stream {
                m.clean.inc();
            }
            m.batches.inc();
            let featurize_started = Instant::now();
            let out = featurize(batch);
            m.featurize.record(featurize_started.elapsed());
            Ok(out)
        } else {
            Ok(featurize(batch))
        }
    };

    let collected: Vec<Result<T, SkippedBatch>> = if parallel {
        tasks.into_par_iter().map(run_one).collect()
    } else {
        tasks.into_iter().map(run_one).collect()
    };
    if telemetry.is_some() {
        // Flush model-internal totals (e.g. encoding-cache counters) that
        // the hot path only buffers locally.
        model.publish_telemetry();
    }
    let total = collected.len();
    let mut results = Vec::with_capacity(total);
    let mut skipped = Vec::new();
    for item in collected {
        match item {
            Ok(t) => results.push(t),
            Err(s) => skipped.push(s),
        }
    }
    let survival = if total == 0 {
        1.0
    } else {
        results.len() as f64 / total as f64
    };
    if survival < min_survival {
        let first = skipped
            .first()
            .expect("survival below 1.0 implies at least one skip");
        return Err(CoreError::with_source(
            format!(
                "batch generation kept only {}/{} tasks (minimum survival {min_survival}); \
                 first skip: generator '{}' run {}: {}",
                results.len(),
                total,
                first.generator,
                first.run,
                first.error.message
            ),
            first.error.clone(),
        ));
    }
    Ok(GenerationOutcome { results, skipped })
}

/// Seeded variant of
/// [`generate_training_examples`](crate::generate_training_examples):
/// applies each generator `runs_per_generator` times and records
/// `(ζ_corrupt, ℓ_corrupt)` pairs, optionally fanning the runs out across
/// threads.
#[allow(clippy::too_many_arguments)]
pub fn generate_training_examples_seeded(
    model: &dyn BlackBoxModel,
    test: &DataFrame,
    generators: &[Box<dyn ErrorGen>],
    runs_per_generator: usize,
    clean_copies: usize,
    metric: Metric,
    master_seed: u64,
    parallel: bool,
) -> Result<Vec<TrainingExample>, CoreError> {
    generate_training_examples_instrumented(
        model,
        test,
        generators,
        runs_per_generator,
        clean_copies,
        metric,
        master_seed,
        parallel,
        None,
    )
}

/// [`generate_training_examples_seeded`] with optional telemetry (see
/// [`generate_batches_instrumented`] for the metrics recorded).
#[allow(clippy::too_many_arguments)]
pub fn generate_training_examples_instrumented(
    model: &dyn BlackBoxModel,
    test: &DataFrame,
    generators: &[Box<dyn ErrorGen>],
    runs_per_generator: usize,
    clean_copies: usize,
    metric: Metric,
    master_seed: u64,
    parallel: bool,
    telemetry: Option<&Registry>,
) -> Result<Vec<TrainingExample>, CoreError> {
    generate_batches_instrumented(
        model,
        test,
        generators,
        runs_per_generator,
        clean_copies,
        metric,
        master_seed,
        parallel,
        telemetry,
        |batch| TrainingExample {
            features: prediction_statistics(&batch.proba),
            score: batch.score,
            generator: batch.generator.to_string(),
        },
    )
}

/// Fault-tolerant variant of [`generate_training_examples_instrumented`]
/// (see [`generate_batches_resilient`] for the skip-and-record contract).
#[allow(clippy::too_many_arguments)]
pub fn generate_training_examples_resilient(
    model: &dyn BlackBoxModel,
    test: &DataFrame,
    generators: &[Box<dyn ErrorGen>],
    runs_per_generator: usize,
    clean_copies: usize,
    metric: Metric,
    master_seed: u64,
    parallel: bool,
    min_survival: f64,
    telemetry: Option<&Registry>,
) -> Result<GenerationOutcome<TrainingExample>, CoreError> {
    generate_batches_resilient(
        model,
        test,
        generators,
        runs_per_generator,
        clean_copies,
        metric,
        master_seed,
        parallel,
        min_survival,
        telemetry,
        |batch| TrainingExample {
            features: prediction_statistics(&batch.proba),
            score: batch.score,
            generator: batch.generator.to_string(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_corruptions::standard_tabular_suite;
    use lvp_dataframe::toy_frame;
    use lvp_models::train_logistic_regression;

    #[test]
    fn run_seeds_are_distinct_across_tasks() {
        let mut seen = std::collections::HashSet::new();
        for g in 0..8 {
            for r in 0..64 {
                assert!(
                    seen.insert(derive_run_seed(42, g, r)),
                    "collision at ({g},{r})"
                );
            }
        }
        // And the master seed actually matters.
        assert_ne!(derive_run_seed(1, 0, 0), derive_run_seed(2, 0, 0));
    }

    #[test]
    fn subsample_lower_bound_is_sane() {
        for n in 1..=50 {
            let lo = subsample_lower_bound(n);
            assert!((1..=n.max(1)).contains(&lo), "n={n} lo={lo}");
            if n >= 2 {
                // There must be room for size variation.
                assert!(lo < n, "n={n} lo={lo} leaves no range to sample");
            }
        }
        assert_eq!(subsample_lower_bound(9), 4);
        assert_eq!(subsample_lower_bound(10), 5);
        assert_eq!(subsample_lower_bound(300), 100);
    }

    #[test]
    fn subsample_range_composes_with_sample_n_for_every_frame_size() {
        // The generation loop draws `sample_n(gen_range(lo..=n))`; the whole
        // range must produce exactly-sized samples for any frame size,
        // including the tiny-frame fallback and the `take == n` endpoint
        // where `sample_n` must return the full frame (not panic or pad).
        use lvp_dataframe::toy_frame;
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 3, 5, 10, 11, 31] {
            let df = toy_frame(n);
            let lo = subsample_lower_bound(n);
            for take in lo..=n {
                assert_eq!(df.sample_n(take, &mut rng).n_rows(), take, "n={n}");
            }
            // Oversized requests (beyond the generation loop's range) cap.
            assert_eq!(df.sample_n(n + 1, &mut rng).n_rows(), n, "n={n}");
        }
    }

    #[test]
    fn instrumented_engine_counts_batches_and_leaves_output_unchanged() {
        let df = toy_frame(100);
        let mut rng = StdRng::seed_from_u64(13);
        let mut model = train_logistic_regression(&df, &mut rng).unwrap();
        let registry = Registry::new();
        model.attach_telemetry(&registry);
        let gens = standard_tabular_suite(df.schema());
        let plain = generate_training_examples_seeded(
            model.as_ref(),
            &df,
            &gens,
            3,
            2,
            Metric::Accuracy,
            5,
            true,
        )
        .unwrap();
        let instrumented = generate_training_examples_instrumented(
            model.as_ref(),
            &df,
            &gens,
            3,
            2,
            Metric::Accuracy,
            5,
            true,
            Some(&registry),
        )
        .unwrap();
        assert_eq!(plain, instrumented, "telemetry must not perturb batches");
        let total = (gens.len() * 3 + 2) as u64;
        let snap = registry.snapshot();
        assert_eq!(snap.counters["engine.batches_generated"], total);
        assert_eq!(snap.counters["engine.batches_clean"], 2);
        assert_eq!(snap.counters["engine.seeds_used"], total);
        for phase in [
            "engine.generate_phase",
            "engine.score_phase",
            "engine.featurize_phase",
        ] {
            let h = &snap.histograms[phase];
            assert_eq!(h.count, total, "{phase}");
            assert_eq!(h.bucket_total(), h.count, "{phase}");
        }
        // The engine flushed the model's cache counters at the end.
        assert!(snap.counters.contains_key("model.cache.hits"));
        assert!(
            snap.counters["model.predict.calls"] >= 2 * total,
            "both runs went through the instrumented model"
        );
    }

    #[test]
    fn parallel_output_matches_sequential() {
        let df = toy_frame(120);
        let mut rng = StdRng::seed_from_u64(7);
        let model = train_logistic_regression(&df, &mut rng).unwrap();
        let gens = standard_tabular_suite(df.schema());
        let sequential = generate_training_examples_seeded(
            model.as_ref(),
            &df,
            &gens,
            4,
            3,
            Metric::Accuracy,
            99,
            false,
        )
        .unwrap();
        let parallel = generate_training_examples_seeded(
            model.as_ref(),
            &df,
            &gens,
            4,
            3,
            Metric::Accuracy,
            99,
            true,
        )
        .unwrap();
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), gens.len() * 4 + 3);
        assert_eq!(sequential.last().unwrap().generator, "clean");
    }

    #[test]
    fn tiny_frames_generate_without_panicking() {
        let df = toy_frame(3);
        let mut rng = StdRng::seed_from_u64(8);
        let model = train_logistic_regression(&toy_frame(40), &mut rng).unwrap();
        let gens = standard_tabular_suite(df.schema());
        let ex = generate_training_examples_seeded(
            model.as_ref(),
            &df,
            &gens,
            3,
            2,
            Metric::Accuracy,
            5,
            true,
        )
        .unwrap();
        assert_eq!(ex.len(), gens.len() * 3 + 2);
    }

    /// A model that fails terminally on every batch whose row count is in
    /// the poisoned set — content-dependent like a real fault plan, so the
    /// skip schedule is thread-count independent.
    struct SizePoisoned {
        inner: Box<dyn BlackBoxModel>,
        poisoned_rows: usize,
    }

    impl BlackBoxModel for SizePoisoned {
        fn predict_proba(&self, data: &DataFrame) -> DenseMatrix {
            self.try_predict_proba(data).unwrap()
        }
        fn try_predict_proba(
            &self,
            data: &DataFrame,
        ) -> Result<DenseMatrix, lvp_models::ModelError> {
            if data.n_rows().is_multiple_of(self.poisoned_rows) {
                return Err(lvp_models::ModelError::transient("poisoned batch size"));
            }
            Ok(self.inner.predict_proba(data))
        }
        fn n_classes(&self) -> usize {
            self.inner.n_classes()
        }
        fn name(&self) -> &str {
            "size-poisoned"
        }
    }

    #[test]
    fn resilient_generation_skips_and_records_failed_tasks() {
        let df = toy_frame(90);
        let mut rng = StdRng::seed_from_u64(21);
        let model = SizePoisoned {
            inner: train_logistic_regression(&df, &mut rng).unwrap(),
            poisoned_rows: 5,
        };
        let gens = standard_tabular_suite(df.schema());
        let registry = Registry::new();
        let outcome = generate_training_examples_resilient(
            &model,
            &df,
            &gens,
            4,
            3,
            Metric::Accuracy,
            17,
            true,
            0.5,
            Some(&registry),
        )
        .unwrap();
        let total = gens.len() * 4 + 3;
        assert!(!outcome.skipped.is_empty(), "some batch sizes divide by 5");
        assert_eq!(outcome.results.len() + outcome.skipped.len(), total);
        assert!(outcome.survival_fraction() < 1.0);
        assert!(outcome.survival_fraction() >= 0.5);
        for s in &outcome.skipped {
            assert!(s.error.message.contains("poisoned"), "{:?}", s.error);
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["engine.batches_skipped"],
            outcome.skipped.len() as u64
        );
        assert_eq!(
            snap.counters["engine.batches_generated"],
            outcome.results.len() as u64
        );

        // Skip decisions are content-keyed → parallel ≡ sequential, both
        // for the surviving examples and for the skip record.
        let sequential = generate_training_examples_resilient(
            &model,
            &df,
            &gens,
            4,
            3,
            Metric::Accuracy,
            17,
            false,
            0.5,
            None,
        )
        .unwrap();
        assert_eq!(outcome.results, sequential.results);
        assert_eq!(outcome.skipped, sequential.skipped);
    }

    #[test]
    fn insufficient_survival_aborts_with_the_typed_cause() {
        let df = toy_frame(40);
        let mut rng = StdRng::seed_from_u64(22);
        let model = SizePoisoned {
            inner: train_logistic_regression(&df, &mut rng).unwrap(),
            poisoned_rows: 1, // every batch fails
        };
        let gens = standard_tabular_suite(df.schema());
        let err = generate_training_examples_resilient(
            &model,
            &df,
            &gens,
            2,
            1,
            Metric::Accuracy,
            3,
            false,
            0.5,
            None,
        )
        .unwrap_err();
        assert!(err.message.contains("minimum survival"), "{err}");
        // The source chain carries the typed serving failure.
        let cause = err.model_error().expect("source preserved");
        assert!(cause.is_retryable());

        // The strict wrapper (min_survival = 1.0) also fails closed.
        let err =
            generate_training_examples_seeded(&model, &df, &gens, 2, 1, Metric::Accuracy, 3, false)
                .unwrap_err();
        assert!(err.model_error().is_some());
    }

    #[test]
    fn auc_with_non_binary_model_fails_before_generating() {
        struct ThreeClass;
        impl BlackBoxModel for ThreeClass {
            fn predict_proba(&self, data: &DataFrame) -> DenseMatrix {
                panic!("must fail fast, not on batch {}", data.n_rows())
            }
            fn n_classes(&self) -> usize {
                3
            }
            fn name(&self) -> &str {
                "three"
            }
        }
        let df = toy_frame(20);
        let gens = standard_tabular_suite(df.schema());
        let err =
            generate_training_examples_seeded(&ThreeClass, &df, &gens, 2, 1, Metric::Auc, 0, false)
                .unwrap_err();
        assert!(err.message.contains("2 probability columns"), "{err}");
    }
}
