//! The paper's featurization of model outputs (§3/§4): a univariate
//! non-parametric summary of each output dimension of `f`, concretely the
//! class-wise percentiles at 0, 5, 10, …, 100.

use lvp_linalg::DenseMatrix;
use lvp_stats::{vigintile_grid, PercentileScratch, VIGINTILE_COUNT};

/// Number of feature dimensions produced for a model with `n_classes`
/// output dimensions.
pub fn feature_dimensionality(n_classes: usize) -> usize {
    n_classes * VIGINTILE_COUNT
}

/// Computes the percentile featurization ζ of a batch of model outputs
/// (`prediction_statistics` in Algorithms 1 & 2).
///
/// For each class column of the `n × m` probability matrix, the 0th, 5th,
/// …, 100th percentiles are collected, yielding `m · 21` features. The
/// features depend only on the *distribution* of the outputs, never on
/// labels — which is what allows applying them to unlabeled serving data.
pub fn prediction_statistics(proba: &DenseMatrix) -> Vec<f64> {
    let grid = vigintile_grid();
    let mut features = Vec::with_capacity(feature_dimensionality(proba.cols()));
    // One scratch buffer serves every class column: the sort happens in
    // place and no per-class Vec is materialized.
    let mut scratch = PercentileScratch::new();
    for class in 0..proba.cols() {
        scratch.extend_percentiles(proba.column_iter(class), &grid, &mut features);
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensionality_is_classes_times_grid() {
        assert_eq!(feature_dimensionality(2), 42);
        assert_eq!(feature_dimensionality(3), 63);
    }

    #[test]
    fn features_match_dimensionality() {
        let proba = DenseMatrix::from_rows(&[vec![0.5, 0.5], vec![0.9, 0.1]]).unwrap();
        let f = prediction_statistics(&proba);
        assert_eq!(f.len(), feature_dimensionality(2));
    }

    #[test]
    fn constant_outputs_yield_constant_percentiles() {
        let proba = DenseMatrix::from_rows(&vec![vec![0.7, 0.3]; 5]).unwrap();
        let f = prediction_statistics(&proba);
        assert!(f[..VIGINTILE_COUNT]
            .iter()
            .all(|&v| (v - 0.7).abs() < 1e-12));
        assert!(f[VIGINTILE_COUNT..]
            .iter()
            .all(|&v| (v - 0.3).abs() < 1e-12));
    }

    #[test]
    fn per_class_blocks_are_monotone() {
        let proba = DenseMatrix::from_rows(&[
            vec![0.1, 0.9],
            vec![0.5, 0.5],
            vec![0.8, 0.2],
            vec![0.3, 0.7],
        ])
        .unwrap();
        let f = prediction_statistics(&proba);
        for block in f.chunks(VIGINTILE_COUNT) {
            for w in block.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn shifted_output_distribution_changes_features() {
        let confident = DenseMatrix::from_rows(&vec![vec![0.95, 0.05]; 10]).unwrap();
        let uncertain = DenseMatrix::from_rows(&vec![vec![0.55, 0.45]; 10]).unwrap();
        assert_ne!(
            prediction_statistics(&confident),
            prediction_statistics(&uncertain)
        );
    }

    #[test]
    fn empty_batch_yields_neutral_features() {
        let proba = DenseMatrix::zeros(0, 2);
        let f = prediction_statistics(&proba);
        assert_eq!(f.len(), 42);
        assert!(f.iter().all(|&v| v == 0.0));
    }
}
