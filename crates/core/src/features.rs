//! The paper's featurization of model outputs (§3/§4): a univariate
//! non-parametric summary of each output dimension of `f`, concretely the
//! class-wise percentiles at 0, 5, 10, …, 100.
//!
//! Two interchangeable sources back the featurization:
//!
//! * an **exact** source — a fully materialized probability matrix, sorted
//!   per class column ([`prediction_statistics`], the original Algorithm
//!   1/2 path, kept as the calibrated oracle);
//! * a **sketched** source — a [`BatchSketch`] built incrementally from
//!   row chunks in `O(bins)` memory, whose per-class quantile and ECDF
//!   sketches are exactly mergeable across chunks, time windows, and
//!   shards (see [`lvp_stats::sketch`] for the error contract).
//!
//! Both query the same shared percentile grid
//! ([`lvp_stats::VIGINTILE_GRID`]), so the two feature layouts cannot
//! drift: dimension `class · 21 + i` always holds the `5i`-th percentile
//! of class `class`'s output distribution.

use crate::CoreError;
use lvp_linalg::DenseMatrix;
use lvp_stats::{
    ks_two_sample, EcdfSketch, PercentileScratch, QuantileSketch, DEFAULT_SKETCH_BINS,
    VIGINTILE_COUNT, VIGINTILE_GRID,
};
use serde::{Deserialize, Serialize};

/// Number of feature dimensions produced for a model with `n_classes`
/// output dimensions.
pub fn feature_dimensionality(n_classes: usize) -> usize {
    n_classes * VIGINTILE_COUNT
}

/// Computes the percentile featurization ζ of a batch of model outputs
/// (`prediction_statistics` in Algorithms 1 & 2) — the exact path.
///
/// For each class column of the `n × m` probability matrix, the 0th, 5th,
/// …, 100th percentiles are collected, yielding `m · 21` features. The
/// features depend only on the *distribution* of the outputs, never on
/// labels — which is what allows applying them to unlabeled serving data.
pub fn prediction_statistics(proba: &DenseMatrix) -> Vec<f64> {
    let mut features = Vec::with_capacity(feature_dimensionality(proba.cols()));
    // One scratch buffer serves every class column: the sort happens in
    // place and no per-class Vec is materialized.
    let mut scratch = PercentileScratch::new();
    for class in 0..proba.cols() {
        scratch.extend_percentiles(proba.column_iter(class), &VIGINTILE_GRID, &mut features);
    }
    features
}

/// Streaming sketch state for one serving batch (or time window): one
/// quantile sketch and one ECDF sketch per class column.
///
/// Built incrementally from row chunks via [`BatchSketch::observe_chunk`]
/// in fixed `O(bins)` memory per class — a million-row batch streams
/// through without ever being resident. [`BatchSketch::merge`] folds
/// another shard's (or window's) state in; because the underlying sketches
/// are commutative monoids (see [`lvp_stats::sketch`]), the merged state
/// is **bit-identical** to the state a single stream over the same rows
/// would have produced, regardless of chunk boundaries, merge order, or
/// thread schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSketch {
    /// Per-class quantile sketches (percentile features).
    quantiles: Vec<QuantileSketch>,
    /// Per-class compressed ECDFs (KS / drift features).
    ecdfs: Vec<EcdfSketch>,
    /// Rows observed so far.
    rows: u64,
    /// Chunks folded in via [`Self::observe_chunk`].
    chunks: u64,
    /// Sketch states folded in via [`Self::merge`].
    merges: u64,
}

impl BatchSketch {
    /// An empty sketch for `n_classes` probability columns, over the unit
    /// range with [`DEFAULT_SKETCH_BINS`] bins per class.
    pub fn new(n_classes: usize) -> Self {
        Self::with_bins(n_classes, DEFAULT_SKETCH_BINS)
    }

    /// An empty sketch with an explicit per-class bin count (featurization
    /// error scales as `1 / bins`; memory as `O(bins)`).
    pub fn with_bins(n_classes: usize, bins: usize) -> Self {
        Self {
            quantiles: (0..n_classes)
                .map(|_| QuantileSketch::new(0.0, 1.0, bins))
                .collect(),
            ecdfs: (0..n_classes)
                .map(|_| EcdfSketch::new(0.0, 1.0, bins))
                .collect(),
            rows: 0,
            chunks: 0,
            merges: 0,
        }
    }

    /// Builds the sketch of a fully materialized output matrix in one
    /// call (used to sketch retained reference outputs).
    pub fn from_outputs(proba: &DenseMatrix) -> Self {
        let mut s = Self::new(proba.cols());
        s.observe_chunk(proba)
            .expect("class count matches by construction");
        s
    }

    /// Folds one chunk of model output rows into the sketch. Chunks may
    /// have any row count (including zero); their class count must match.
    pub fn observe_chunk(&mut self, proba: &DenseMatrix) -> Result<(), CoreError> {
        if proba.cols() != self.quantiles.len() {
            return Err(CoreError::new(format!(
                "output chunk has {} class columns but the sketch tracks {}",
                proba.cols(),
                self.quantiles.len()
            )));
        }
        for class in 0..proba.cols() {
            let q = &mut self.quantiles[class];
            let e = &mut self.ecdfs[class];
            for v in proba.column_iter(class) {
                q.insert(v);
                e.insert(v);
            }
        }
        self.rows += proba.rows() as u64;
        self.chunks += 1;
        Ok(())
    }

    /// Folds another sketch's state into this one (shard or window merge).
    /// Exactly associative and commutative — any merge tree over the same
    /// chunk set yields bit-identical state.
    pub fn merge(&mut self, other: &Self) -> Result<(), CoreError> {
        if other.quantiles.len() != self.quantiles.len() {
            return Err(CoreError::new(format!(
                "cannot merge a {}-class sketch into a {}-class sketch",
                other.quantiles.len(),
                self.quantiles.len()
            )));
        }
        for (q, oq) in self.quantiles.iter_mut().zip(&other.quantiles) {
            q.merge(oq)
                .map_err(|e| CoreError::with_source("merging quantile sketches", e))?;
        }
        for (e, oe) in self.ecdfs.iter_mut().zip(&other.ecdfs) {
            e.merge(oe)
                .map_err(|err| CoreError::with_source("merging ecdf sketches", err))?;
        }
        self.rows += other.rows;
        self.chunks += other.chunks;
        self.merges += 1;
        Ok(())
    }

    /// The percentile featurization ζ queried from the sketch state: the
    /// same shared grid and layout as [`prediction_statistics`], each
    /// feature within the sketches' value-error bound of the exact oracle.
    pub fn prediction_statistics(&self) -> Vec<f64> {
        let mut features = Vec::with_capacity(feature_dimensionality(self.quantiles.len()));
        for q in &self.quantiles {
            q.extend_percentiles(&VIGINTILE_GRID, &mut features);
        }
        features
    }

    /// Per-class compressed ECDFs (KS / drift feature support).
    pub fn ecdfs(&self) -> &[EcdfSketch] {
        &self.ecdfs
    }

    /// Number of probability columns tracked.
    pub fn n_classes(&self) -> usize {
        self.quantiles.len()
    }

    /// Rows observed so far (across all chunks and merges).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Chunks folded in so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Sketch merges folded in so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// The worst per-feature deviation bound versus the exact oracle.
    pub fn value_error_bound(&self) -> f64 {
        self.quantiles
            .iter()
            .map(QuantileSketch::value_error_bound)
            .fold(0.0, f64::max)
    }

    /// Approximate in-memory footprint in bytes — fixed by class count ×
    /// bin count, independent of how many rows streamed through.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .quantiles
                .iter()
                .map(QuantileSketch::approx_bytes)
                .sum::<usize>()
            + self
                .ecdfs
                .iter()
                .map(EcdfSketch::approx_bytes)
                .sum::<usize>()
    }
}

/// One serving batch's output distribution, backed by either source.
///
/// The featurization spine (`featurize_source`) is written against this
/// enum, so the predictor, validator, and monitor run identically off a
/// materialized matrix (exact oracle) or streaming sketch state.
pub enum FeatureSource<'a> {
    /// Fully materialized model outputs — the exact path.
    Exact(&'a DenseMatrix),
    /// Incrementally built sketch state — the streaming path.
    Sketched(&'a BatchSketch),
}

impl FeatureSource<'_> {
    /// Number of probability columns the source describes.
    pub fn n_classes(&self) -> usize {
        match self {
            FeatureSource::Exact(proba) => proba.cols(),
            FeatureSource::Sketched(sketch) => sketch.n_classes(),
        }
    }

    /// The percentile featurization ζ of the source.
    pub fn percentile_features(&self) -> Vec<f64> {
        match self {
            FeatureSource::Exact(proba) => prediction_statistics(proba),
            FeatureSource::Sketched(sketch) => sketch.prediction_statistics(),
        }
    }
}

/// Reference output distributions the KS features compare a batch against.
pub(crate) enum KsReference<'a> {
    /// KS features disabled.
    None,
    /// Retained per-class test-time output columns — the exact path.
    Exact(&'a [Vec<f64>]),
    /// Compressed per-class ECDFs of the test-time outputs.
    Sketched(&'a [EcdfSketch]),
}

impl KsReference<'_> {
    fn n_classes(&self) -> Option<usize> {
        match self {
            KsReference::None => None,
            KsReference::Exact(cols) => Some(cols.len()),
            KsReference::Sketched(ecdfs) => Some(ecdfs.len()),
        }
    }
}

/// Featurizes one batch of model outputs from either source: percentile
/// statistics plus, when a reference is given, per-class KS statistic and
/// p-value against the retained test-time output distributions.
///
/// The exact/exact combination reproduces the original
/// `ks_two_sample`-on-columns path bit-for-bit; sketched combinations run
/// the KS test on compressed ECDFs (an exact-source batch is sketched on
/// the fly when the reference is sketched, so both sides quantize
/// identically). A class-count mismatch between source and reference is
/// rejected outright — truncating or padding the KS loop would shift every
/// downstream feature index and the meta-model would silently consume
/// garbage.
pub(crate) fn featurize_source(
    source: &FeatureSource<'_>,
    reference: &KsReference<'_>,
) -> Result<Vec<f64>, CoreError> {
    let mut f = source.percentile_features();
    let Some(ref_classes) = reference.n_classes() else {
        return Ok(f);
    };
    if ref_classes != source.n_classes() {
        return Err(CoreError::new(format!(
            "output batch has {} class columns but the validator retained \
             test outputs for {ref_classes} classes",
            source.n_classes()
        )));
    }
    for class in 0..ref_classes {
        let outcome = match (source, reference) {
            (FeatureSource::Exact(proba), KsReference::Exact(cols)) => {
                ks_two_sample(&proba.column(class), &cols[class])
            }
            (FeatureSource::Sketched(sketch), KsReference::Sketched(ecdfs)) => sketch.ecdfs()
                [class]
                .ks_test(&ecdfs[class])
                .map_err(|e| CoreError::with_source("ks over sketched reference", e))?,
            (FeatureSource::Exact(proba), KsReference::Sketched(ecdfs)) => {
                let (lo, hi, bins) = ecdfs[class].grid();
                let mut serving = EcdfSketch::new(lo, hi, bins);
                serving.extend(proba.column_iter(class));
                serving
                    .ks_test(&ecdfs[class])
                    .map_err(|e| CoreError::with_source("ks over sketched reference", e))?
            }
            (FeatureSource::Sketched(sketch), KsReference::Exact(cols)) => {
                let (lo, hi, bins) = sketch.ecdfs()[class].grid();
                let reference = EcdfSketch::from_values(&cols[class], lo, hi, bins);
                sketch.ecdfs()[class]
                    .ks_test(&reference)
                    .map_err(|e| CoreError::with_source("ks over sketched batch", e))?
            }
            (_, KsReference::None) => unreachable!("handled above"),
        };
        f.push(outcome.statistic);
        f.push(outcome.p_value);
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensionality_is_classes_times_grid() {
        assert_eq!(feature_dimensionality(2), 42);
        assert_eq!(feature_dimensionality(3), 63);
    }

    #[test]
    fn features_match_dimensionality() {
        let proba = DenseMatrix::from_rows(&[vec![0.5, 0.5], vec![0.9, 0.1]]).unwrap();
        let f = prediction_statistics(&proba);
        assert_eq!(f.len(), feature_dimensionality(2));
    }

    #[test]
    fn constant_outputs_yield_constant_percentiles() {
        let proba = DenseMatrix::from_rows(&vec![vec![0.7, 0.3]; 5]).unwrap();
        let f = prediction_statistics(&proba);
        assert!(f[..VIGINTILE_COUNT]
            .iter()
            .all(|&v| (v - 0.7).abs() < 1e-12));
        assert!(f[VIGINTILE_COUNT..]
            .iter()
            .all(|&v| (v - 0.3).abs() < 1e-12));
    }

    #[test]
    fn per_class_blocks_are_monotone() {
        let proba = DenseMatrix::from_rows(&[
            vec![0.1, 0.9],
            vec![0.5, 0.5],
            vec![0.8, 0.2],
            vec![0.3, 0.7],
        ])
        .unwrap();
        let f = prediction_statistics(&proba);
        for block in f.chunks(VIGINTILE_COUNT) {
            for w in block.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn shifted_output_distribution_changes_features() {
        let confident = DenseMatrix::from_rows(&vec![vec![0.95, 0.05]; 10]).unwrap();
        let uncertain = DenseMatrix::from_rows(&vec![vec![0.55, 0.45]; 10]).unwrap();
        assert_ne!(
            prediction_statistics(&confident),
            prediction_statistics(&uncertain)
        );
    }

    #[test]
    fn empty_batch_yields_neutral_features() {
        let proba = DenseMatrix::zeros(0, 2);
        let f = prediction_statistics(&proba);
        assert_eq!(f.len(), 42);
        assert!(f.iter().all(|&v| v == 0.0));
    }

    /// A deterministic spread-out probability matrix for sketch tests.
    fn spread_outputs(rows: usize) -> DenseMatrix {
        let data: Vec<f64> = (0..rows)
            .flat_map(|i| {
                let p = ((i * 61) % 997) as f64 / 997.0;
                [p, 1.0 - p]
            })
            .collect();
        DenseMatrix::from_vec(rows, 2, data).unwrap()
    }

    #[test]
    fn sketched_features_stay_within_the_error_bound() {
        let proba = spread_outputs(5_000);
        let sketch = BatchSketch::from_outputs(&proba);
        let exact = prediction_statistics(&proba);
        let sketched = sketch.prediction_statistics();
        assert_eq!(exact.len(), sketched.len());
        let bound = sketch.value_error_bound() + 1e-12;
        for (i, (a, b)) in exact.iter().zip(&sketched).enumerate() {
            assert!((a - b).abs() <= bound, "dim {i}: exact {a} sketched {b}");
        }
    }

    #[test]
    fn chunked_observation_is_bit_identical_to_one_shot() {
        let proba = spread_outputs(1_000);
        let whole = BatchSketch::from_outputs(&proba);
        let mut chunked = BatchSketch::new(2);
        let rows: Vec<usize> = (0..proba.rows()).collect();
        for chunk in rows.chunks(137) {
            chunked.observe_chunk(&proba.select_rows(chunk)).unwrap();
        }
        assert_eq!(
            whole.prediction_statistics(),
            chunked.prediction_statistics()
        );
        assert_eq!(whole.rows(), chunked.rows());
    }

    #[test]
    fn shard_merge_is_bit_identical_to_single_stream() {
        let proba = spread_outputs(1_200);
        let rows: Vec<usize> = (0..proba.rows()).collect();
        let mut single = BatchSketch::new(2);
        for chunk in rows.chunks(100) {
            single.observe_chunk(&proba.select_rows(chunk)).unwrap();
        }
        // 4 shards × 3 chunks, merged in shard order.
        let mut merged = BatchSketch::new(2);
        for shard_rows in rows.chunks(300) {
            let mut shard = BatchSketch::new(2);
            for chunk in shard_rows.chunks(100) {
                shard.observe_chunk(&proba.select_rows(chunk)).unwrap();
            }
            merged.merge(&shard).unwrap();
        }
        let a = single.prediction_statistics();
        let b = merged.prediction_statistics();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(single.rows(), merged.rows());
        assert_eq!(merged.merges(), 4);
    }

    #[test]
    fn sketch_rejects_mismatched_class_counts() {
        let mut sketch = BatchSketch::new(2);
        let wide = DenseMatrix::from_vec(3, 3, vec![1.0 / 3.0; 9]).unwrap();
        assert!(sketch.observe_chunk(&wide).is_err());
        let other = BatchSketch::new(3);
        assert!(sketch.merge(&other).is_err());
    }

    #[test]
    fn feature_source_is_uniform_over_both_backends() {
        let proba = spread_outputs(400);
        let sketch = BatchSketch::from_outputs(&proba);
        let exact = FeatureSource::Exact(&proba);
        let sketched = FeatureSource::Sketched(&sketch);
        assert_eq!(exact.n_classes(), 2);
        assert_eq!(sketched.n_classes(), 2);
        let fe = exact.percentile_features();
        let fs = sketched.percentile_features();
        assert_eq!(fe.len(), fs.len());
        let bound = sketch.value_error_bound() + 1e-12;
        for (a, b) in fe.iter().zip(&fs) {
            assert!((a - b).abs() <= bound);
        }
    }

    #[test]
    fn footprint_is_fixed_while_rows_stream_through() {
        let mut sketch = BatchSketch::new(2);
        let chunk = spread_outputs(1_000);
        sketch.observe_chunk(&chunk).unwrap();
        let bytes = sketch.approx_bytes();
        for _ in 0..20 {
            sketch.observe_chunk(&chunk).unwrap();
        }
        assert_eq!(sketch.approx_bytes(), bytes);
        assert_eq!(sketch.rows(), 21_000);
    }
}
