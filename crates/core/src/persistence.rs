//! Serialization of fitted performance predictors.
//!
//! A predictor is deployed *alongside* a model (Figure 1b), typically in a
//! different process or machine than where it was trained. A
//! [`PredictorArtifact`] captures everything except the black box model
//! itself (which lives wherever it lives — a cloud endpoint, a vendored
//! binary): the fitted meta-regressor, the metric, and the reference test
//! score. Serialize it with any serde format; at load time, reattach the
//! model handle.

use crate::{CoreError, Metric, PerformancePredictor};
use lvp_models::forest::RandomForestRegressor;
use lvp_models::BlackBoxModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Serializable snapshot of a fitted [`PerformancePredictor`], minus the
/// black box model it monitors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictorArtifact {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The fitted random-forest meta-regressor.
    pub regressor: RandomForestRegressor,
    /// The scoring function the predictor estimates.
    pub metric: MetricTag,
    /// Reference score on the held-out test data.
    pub test_score: f64,
    /// Expected featurization dimensionality (n_classes × 21).
    pub n_feature_dims: usize,
}

/// Serializable counterpart of [`Metric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricTag {
    /// Classification accuracy.
    Accuracy,
    /// ROC AUC.
    Auc,
}

impl From<Metric> for MetricTag {
    fn from(m: Metric) -> Self {
        match m {
            Metric::Accuracy => MetricTag::Accuracy,
            Metric::Auc => MetricTag::Auc,
        }
    }
}

impl From<MetricTag> for Metric {
    fn from(t: MetricTag) -> Self {
        match t {
            MetricTag::Accuracy => Metric::Accuracy,
            MetricTag::Auc => Metric::Auc,
        }
    }
}

impl PerformancePredictor {
    /// Snapshots the predictor for serialization.
    pub fn to_artifact(&self) -> PredictorArtifact {
        PredictorArtifact {
            version: 1,
            regressor: self.regressor_clone(),
            metric: self.metric().into(),
            test_score: self.test_score(),
            n_feature_dims: self.feature_dims(),
        }
    }

    /// Restores a predictor from an artifact, reattaching the black box
    /// model it monitors. The model must have the same number of classes
    /// as at training time.
    pub fn from_artifact(
        artifact: PredictorArtifact,
        model: Arc<dyn BlackBoxModel>,
    ) -> Result<Self, CoreError> {
        if artifact.version != 1 {
            return Err(CoreError::new(format!(
                "unsupported artifact version {}",
                artifact.version
            )));
        }
        let expected = crate::feature_dimensionality(model.n_classes());
        if artifact.n_feature_dims != expected {
            return Err(CoreError::new(format!(
                "artifact expects {} feature dims but the model produces {}",
                artifact.n_feature_dims, expected
            )));
        }
        Ok(Self::from_parts(
            model,
            artifact.regressor,
            artifact.metric.into(),
            artifact.test_score,
            artifact.n_feature_dims,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredictorConfig;
    use lvp_corruptions::standard_tabular_suite;
    use lvp_dataframe::toy_frame;
    use lvp_models::train_logistic_regression;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn artifact_round_trip_preserves_predictions() {
        let df = toy_frame(250);
        let mut rng = StdRng::seed_from_u64(41);
        let (train, rest) = df.split_frac(0.4, &mut rng);
        let (test, serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let before = predictor.predict(&serving).unwrap();

        let artifact = predictor.to_artifact();
        let restored = PerformancePredictor::from_artifact(artifact, model).unwrap();
        let after = restored.predict(&serving).unwrap();
        assert_eq!(before, after);
        assert_eq!(restored.test_score(), predictor.test_score());
    }

    #[test]
    fn artifact_rejects_wrong_class_count() {
        let df = toy_frame(150);
        let mut rng = StdRng::seed_from_u64(42);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&df, &mut rng).unwrap());
        let gens = standard_tabular_suite(df.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &df,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let mut artifact = predictor.to_artifact();
        artifact.n_feature_dims = 63; // pretend 3 classes
        assert!(PerformancePredictor::from_artifact(artifact, model).is_err());
    }

    #[test]
    fn artifact_rejects_unknown_version() {
        let df = toy_frame(150);
        let mut rng = StdRng::seed_from_u64(43);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&df, &mut rng).unwrap());
        let gens = standard_tabular_suite(df.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &df,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let mut artifact = predictor.to_artifact();
        artifact.version = 99;
        assert!(PerformancePredictor::from_artifact(artifact, model).is_err());
    }

    #[test]
    fn metric_tag_round_trip() {
        assert_eq!(Metric::from(MetricTag::from(Metric::Auc)), Metric::Auc);
        assert_eq!(
            Metric::from(MetricTag::from(Metric::Accuracy)),
            Metric::Accuracy
        );
    }
}
