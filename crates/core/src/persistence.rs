//! Serialization of the whole serving stack: predictor, validator and
//! monitor artifacts.
//!
//! A predictor or validator is deployed *alongside* a model (Figure 1b),
//! typically in a different process or machine than where it was trained,
//! and the monitor wrapping them is a long-lived process that must survive
//! restarts without losing its debounce state. Each artifact captures
//! everything except the black box model itself (which lives wherever it
//! lives — a cloud endpoint, a vendored binary): the fitted meta-model,
//! the metric, the reference test score, and the input contract the
//! serving side must honour (schema fingerprint + class count). Serialize
//! with any serde format — [`to_json`]/[`save_json`] cover the common
//! JSON-file case; at load time, reattach the model handle.
//!
//! ## The input contract
//!
//! Every artifact records the fit-time [`Schema::fingerprint`] of the
//! held-out test frame and the model's class count. At restore time the
//! class count is checked against the reattached model, and at serving
//! time every frame (and every raw output matrix) is checked before
//! featurization — a mismatched frame returns [`CoreError`] instead of
//! silently mis-featurizing.
//!
//! [`Schema::fingerprint`]: lvp_dataframe::Schema::fingerprint

use crate::features::BatchSketch;
use crate::{BatchMonitor, CoreError, CoreErrorKind, Metric, MonitorPolicy, PerformancePredictor};
use crate::{PerformanceValidator, ValidationOutcome};
use lvp_linalg::DenseMatrix;
use lvp_models::forest::RandomForestRegressor;
use lvp_models::gbdt::GbdtClassifier;
use lvp_models::BlackBoxModel;
use lvp_stats::EcdfSketch;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// Current artifact format version, shared by all three artifact types.
///
/// Version history: 1 — original format, no input contract; 2 — adds the
/// schema-fingerprint/class-count input contract; 3 — adds streaming
/// sketch state (the validator's test-output ECDFs, the monitor's open
/// window and reference ECDFs); 4 — adds the calibrated-interval state
/// (the predictor's conformal calibration residuals and interval alpha,
/// the monitor policy's alarm mode). Every added field is an `Option`, so
/// older artifacts deserialize with `None` and the loaders reconstruct (or
/// skip) the missing state — pre-v4 artifacts load into the point-estimate
/// threshold policy with quantile-only intervals.
pub const ARTIFACT_VERSION: u32 = 4;

/// Serializes an artifact (or anything serde-serializable) to JSON.
pub fn to_json<T: Serialize>(artifact: &T) -> Result<String, CoreError> {
    serde_json::to_string(artifact).map_err(|e| CoreError::new(format!("serialize artifact: {e}")))
}

/// Deserializes an artifact from JSON.
pub fn from_json<T: Deserialize>(json: &str) -> Result<T, CoreError> {
    serde_json::from_str(json).map_err(|e| CoreError::new(format!("deserialize artifact: {e}")))
}

/// Magic token opening every enveloped artifact file. Files that do not
/// start with it are treated as legacy bare-JSON artifacts.
pub const ENVELOPE_MAGIC: &str = "LVPENV";

/// Envelope *format* version (independent of [`ARTIFACT_VERSION`], which
/// versions the JSON payload inside).
const ENVELOPE_VERSION: u32 = 1;

/// FNV-1a (64-bit) over a byte slice — the integrity checksum of the
/// artifact envelope and the lvpd journal records. Not cryptographic; it
/// catches the failure modes a serving host actually has (truncation,
/// torn writes, bit rot), at a cost of one pass over the payload.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Wraps a serialized payload in the checksummed, length-framed artifact
/// envelope: one ASCII header line
/// `LVPENV <envelope-version> <payload-len> <fnv1a64-hex>\n` followed by
/// the raw payload bytes. The header is text so enveloped JSON artifacts
/// stay greppable and diffable; the frame is exact so [`unwrap_envelope`]
/// can detect truncation and corruption byte-for-byte.
pub fn wrap_envelope(payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "{ENVELOPE_MAGIC} {ENVELOPE_VERSION} {} {:016x}\n",
        payload.len(),
        checksum64(payload)
    );
    let mut out = Vec::with_capacity(header.len() + payload.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Whether `bytes` starts with the artifact-envelope magic.
pub fn is_enveloped(bytes: &[u8]) -> bool {
    bytes.starts_with(ENVELOPE_MAGIC.as_bytes())
}

/// Verifies an artifact envelope and returns the payload slice. Every
/// defect is a typed [`CoreError`]: a malformed or unsupported header is
/// [`CoreErrorKind::CorruptHeader`], a payload shorter than the declared
/// length is [`CoreErrorKind::Truncated`] (the signature of a crash
/// mid-write), and a checksum failure — including trailing garbage — is
/// [`CoreErrorKind::ChecksumMismatch`].
pub fn unwrap_envelope(bytes: &[u8]) -> Result<&[u8], CoreError> {
    let corrupt = |m: String| CoreError::with_kind(CoreErrorKind::CorruptHeader, m);
    if !is_enveloped(bytes) {
        return Err(corrupt("artifact is not enveloped".to_string()));
    }
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt("envelope header has no terminating newline".to_string()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| corrupt("envelope header is not ASCII".to_string()))?;
    let mut fields = header.split(' ');
    let _magic = fields.next();
    let version: u32 = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt(format!("envelope header '{header}' has no version")))?;
    if version != ENVELOPE_VERSION {
        return Err(corrupt(format!(
            "unsupported envelope version {version} (supported: {ENVELOPE_VERSION})"
        )));
    }
    let declared_len: usize = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt(format!("envelope header '{header}' has no payload length")))?;
    let declared_sum = fields
        .next()
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| corrupt(format!("envelope header '{header}' has no checksum")))?;
    if fields.next().is_some() {
        return Err(corrupt(format!(
            "envelope header '{header}' has trailing fields"
        )));
    }
    let payload = &bytes[newline + 1..];
    if payload.len() < declared_len {
        return Err(CoreError::with_kind(
            CoreErrorKind::Truncated,
            format!(
                "artifact truncated: header declares {declared_len} payload bytes, \
                 file holds {}",
                payload.len()
            ),
        ));
    }
    // Trailing bytes beyond the declared length are corruption too (an
    // interrupted overwrite, a concatenated file): the declared-length
    // prefix may well checksum clean, but the file as a whole is not the
    // artifact that was written.
    if payload.len() > declared_len {
        return Err(CoreError::with_kind(
            CoreErrorKind::ChecksumMismatch,
            format!(
                "artifact has {} trailing bytes beyond the declared {declared_len}-byte payload",
                payload.len() - declared_len
            ),
        ));
    }
    let actual_sum = checksum64(payload);
    if actual_sum != declared_sum {
        return Err(CoreError::with_kind(
            CoreErrorKind::ChecksumMismatch,
            format!(
                "artifact checksum mismatch: header records {declared_sum:016x}, \
                 payload hashes to {actual_sum:016x}"
            ),
        ));
    }
    Ok(payload)
}

/// Writes `bytes` to `path` atomically and durably: the bytes land in a
/// sibling `.tmp` file first, that file is fsynced, renamed over `path`,
/// and the parent directory is fsynced so the rename itself survives a
/// power cut. A crash at any point leaves either the old file or the new
/// one — never a half-written mix, and never neither.
pub fn atomic_write_durable(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), CoreError> {
    let path = path.as_ref();
    let io_err = |stage: &str, e: std::io::Error| {
        CoreError::with_kind(
            CoreErrorKind::Io,
            format!("{stage} {}: {e}", path.display()),
        )
    };
    let mut file_name = path
        .file_name()
        .ok_or_else(|| {
            CoreError::with_kind(
                CoreErrorKind::Io,
                format!("write artifact {}: path has no file name", path.display()),
            )
        })?
        .to_os_string();
    file_name.push(".tmp");
    let tmp = path.with_file_name(file_name);
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
        use std::io::Write as _;
        file.write_all(bytes).map_err(|e| io_err("write", e))?;
        file.sync_all().map_err(|e| io_err("sync", e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename into", e))?;
    // Make the rename durable: fsync the directory entry. Directories
    // cannot be opened for sync on every platform; where they cannot,
    // atomicity still holds and durability is the filesystem's default.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = std::fs::File::open(parent) {
            dir.sync_all().map_err(|e| io_err("sync parent of", e))?;
        }
    }
    Ok(())
}

/// Serializes an artifact to a checksummed envelope file, atomically and
/// durably (see [`atomic_write_durable`] — a crash mid-save can no longer
/// destroy the previous snapshot, and a completed save survives power
/// loss).
pub fn save_json<T: Serialize>(artifact: &T, path: impl AsRef<Path>) -> Result<(), CoreError> {
    atomic_write_durable(path, &wrap_envelope(to_json(artifact)?.as_bytes()))
}

/// Deserializes an artifact from a file written by [`save_json`] — or
/// from a legacy bare-JSON artifact file (anything not starting with
/// [`ENVELOPE_MAGIC`]), which predates the envelope and carries no
/// integrity frame. Envelope defects surface as typed [`CoreError`]s
/// ([`CoreError::kind`]) instead of downstream serde garbage.
pub fn load_json<T: Deserialize>(path: impl AsRef<Path>) -> Result<T, CoreError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| {
        CoreError::with_kind(
            CoreErrorKind::Io,
            format!("read artifact {}: {e}", path.display()),
        )
    })?;
    let payload = if is_enveloped(&bytes) {
        unwrap_envelope(&bytes)
            .map_err(|e| {
                CoreError::with_kind(
                    e.kind(),
                    format!("artifact {}: {}", path.display(), e.message),
                )
            })?
            .to_vec()
    } else {
        bytes
    };
    let json = std::str::from_utf8(&payload).map_err(|e| {
        CoreError::with_kind(
            CoreErrorKind::CorruptHeader,
            format!("artifact {} payload is not UTF-8: {e}", path.display()),
        )
    })?;
    from_json(json)
}

fn check_version(kind: &str, version: u32) -> Result<(), CoreError> {
    // All prior versions are still loadable: fields they predate
    // deserialize as `None` and the loaders reconstruct or skip the
    // corresponding state (see [`ARTIFACT_VERSION`]).
    if version == 0 || version > ARTIFACT_VERSION {
        return Err(CoreError::new(format!(
            "unsupported {kind} artifact version {version} (supported: 1..={ARTIFACT_VERSION})"
        )));
    }
    Ok(())
}

fn check_model_classes(
    kind: &str,
    expected: Option<usize>,
    model: &dyn BlackBoxModel,
) -> Result<(), CoreError> {
    if let Some(expected) = expected {
        if expected != model.n_classes() {
            return Err(CoreError::new(format!(
                "{kind} artifact was fitted for {expected} classes but the \
                 reattached model produces {}",
                model.n_classes()
            )));
        }
    }
    Ok(())
}

/// Serializable counterpart of [`Metric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricTag {
    /// Classification accuracy.
    Accuracy,
    /// ROC AUC.
    Auc,
}

impl From<Metric> for MetricTag {
    fn from(m: Metric) -> Self {
        match m {
            Metric::Accuracy => MetricTag::Accuracy,
            Metric::Auc => MetricTag::Auc,
        }
    }
}

impl From<MetricTag> for Metric {
    fn from(t: MetricTag) -> Self {
        match t {
            MetricTag::Accuracy => Metric::Accuracy,
            MetricTag::Auc => Metric::Auc,
        }
    }
}

/// Serializable snapshot of a fitted [`PerformancePredictor`], minus the
/// black box model it monitors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictorArtifact {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The fitted random-forest meta-regressor.
    pub regressor: RandomForestRegressor,
    /// The scoring function the predictor estimates.
    pub metric: MetricTag,
    /// Reference score on the held-out test data.
    pub test_score: f64,
    /// Expected featurization dimensionality (n_classes × 21).
    pub n_feature_dims: usize,
    /// Class count of the model the predictor was fitted against
    /// (`None` only in version-1 artifacts).
    pub n_classes: Option<usize>,
    /// Fingerprint of the fit-time test schema (`None` in version-1
    /// artifacts and for predictors fitted from raw examples).
    pub schema_fingerprint: Option<u64>,
    /// Miscoverage rate of the predictor's intervals (`None` in pre-v4
    /// artifacts, which load with the default alpha).
    pub interval_alpha: Option<f64>,
    /// Sorted held-out absolute residuals backing the conformal interval
    /// half-width (`None` in pre-v4 artifacts and when calibration was
    /// disabled or starved — intervals then fall back to bare ensemble
    /// quantiles).
    pub calibration_residuals: Option<Vec<f64>>,
}

impl PerformancePredictor {
    /// Snapshots the predictor for serialization.
    pub fn to_artifact(&self) -> PredictorArtifact {
        PredictorArtifact {
            version: ARTIFACT_VERSION,
            regressor: self.regressor_clone(),
            metric: self.metric().into(),
            test_score: self.test_score(),
            n_feature_dims: self.feature_dims(),
            n_classes: Some(self.n_classes()),
            schema_fingerprint: self.schema_fingerprint(),
            interval_alpha: Some(self.interval_alpha()),
            calibration_residuals: self.calibration_residuals().map(<[f64]>::to_vec),
        }
    }

    /// Restores a predictor from an artifact, reattaching the black box
    /// model it monitors. The model must have the same number of classes
    /// as at training time.
    pub fn from_artifact(
        artifact: PredictorArtifact,
        model: Arc<dyn BlackBoxModel>,
    ) -> Result<Self, CoreError> {
        check_version("predictor", artifact.version)?;
        check_model_classes("predictor", artifact.n_classes, model.as_ref())?;
        let expected = crate::feature_dimensionality(model.n_classes());
        if artifact.n_feature_dims != expected {
            return Err(CoreError::new(format!(
                "artifact expects {} feature dims but the model produces {}",
                artifact.n_feature_dims, expected
            )));
        }
        // Re-sort defensively (idempotent for artifacts we wrote): the
        // conformal order statistic indexes into a sorted slice, and a
        // hand-edited artifact must not silently mis-calibrate.
        let calibration = artifact.calibration_residuals.map(|mut residuals| {
            residuals.sort_by(f64::total_cmp);
            residuals
        });
        Ok(Self::from_parts(
            model,
            artifact.regressor,
            artifact.metric.into(),
            artifact.test_score,
            artifact.n_feature_dims,
            artifact.schema_fingerprint,
            artifact
                .interval_alpha
                .unwrap_or(crate::DEFAULT_INTERVAL_ALPHA),
            calibration,
        ))
    }
}

/// Serializable snapshot of a fitted [`PerformanceValidator`], minus the
/// black box model. Unlike the predictor, the validator's fitted state
/// includes the model's retained test-time output columns (the KS features
/// compare every serving batch against them, §4), so they travel in the
/// artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidatorArtifact {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The fitted gradient-boosted decision-tree classifier.
    pub classifier: GbdtClassifier,
    /// Retained per-class test-time output columns.
    pub test_columns: Vec<Vec<f64>>,
    /// Reference score on the held-out test data.
    pub test_score: f64,
    /// Acceptable relative quality loss `t`.
    pub threshold: f64,
    /// The scoring function the validator decides about.
    pub metric: MetricTag,
    /// Whether the KS features against `test_columns` are in use.
    pub use_ks_features: bool,
    /// Fingerprint of the fit-time test schema.
    pub schema_fingerprint: Option<u64>,
    /// Compressed ECDF sketches of the test-time outputs (the sketched-path
    /// KS reference). `None` in pre-version-3 artifacts; rebuilt from
    /// `test_columns` at load time (a pure function of them), so restored
    /// validators behave identically either way.
    pub test_ecdf: Option<Vec<EcdfSketch>>,
}

impl PerformanceValidator {
    /// Snapshots the validator for serialization.
    pub fn to_artifact(&self) -> ValidatorArtifact {
        ValidatorArtifact {
            version: ARTIFACT_VERSION,
            classifier: self.classifier_clone(),
            test_columns: self.test_columns().to_vec(),
            test_score: self.test_score(),
            threshold: self.threshold(),
            metric: self.metric().into(),
            use_ks_features: self.use_ks_features(),
            schema_fingerprint: self.schema_fingerprint(),
            test_ecdf: Some(self.test_ecdf().to_vec()),
        }
    }

    /// Restores a validator from an artifact, reattaching the black box
    /// model. The model must have the same number of classes as at
    /// training time (the retained test columns are per class).
    pub fn from_artifact(
        artifact: ValidatorArtifact,
        model: Arc<dyn BlackBoxModel>,
    ) -> Result<Self, CoreError> {
        check_version("validator", artifact.version)?;
        check_model_classes(
            "validator",
            Some(artifact.test_columns.len()),
            model.as_ref(),
        )?;
        if !(0.0..1.0).contains(&artifact.threshold) {
            return Err(CoreError::new(
                "validator artifact threshold must lie in [0, 1)",
            ));
        }
        Ok(Self::from_parts(
            model,
            artifact.classifier,
            artifact.test_columns,
            artifact.test_ecdf,
            artifact.test_score,
            artifact.threshold,
            artifact.metric.into(),
            artifact.use_ks_features,
            artifact.schema_fingerprint,
        ))
    }
}

/// Serializable snapshot of a [`BatchMonitor`]'s alarm state, minus the
/// predictor it wraps (persist that separately as a
/// [`PredictorArtifact`]). Restoring it lets a crashed monitor resume with
/// its EWMA value and debounce streak intact, so a drop that started
/// before the crash still alarms on schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorArtifact {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The alarm policy.
    pub policy: MonitorPolicy,
    /// Current EWMA value (`None` before the first batch).
    pub smoothed: Option<f64>,
    /// Current consecutive-violation streak.
    pub violation_streak: usize,
    /// Total batches observed so far (continues the batch numbering).
    pub batches_seen: usize,
    /// The open streaming window's sketch state, if a window was open when
    /// the snapshot was taken (`None` in pre-version-3 artifacts). The
    /// sketches persist bit-identically, so a window that started before a
    /// crash finishes with the exact report an uninterrupted monitor would
    /// have produced.
    pub window: Option<BatchSketch>,
    /// Why the open window was poisoned, when it was.
    pub window_degraded: Option<String>,
    /// Compressed reference ECDFs for the sketched drift tests (`None` in
    /// pre-version-3 artifacts and when
    /// [`BatchMonitor::retain_reference_outputs`] was never called).
    pub reference_ecdf: Option<Vec<EcdfSketch>>,
}

impl BatchMonitor {
    /// Snapshots the monitor's policy and alarm state for serialization —
    /// including any open streaming window, which survives bit-identically.
    pub fn to_artifact(&self) -> MonitorArtifact {
        MonitorArtifact {
            version: ARTIFACT_VERSION,
            policy: self.policy(),
            smoothed: self.smoothed(),
            violation_streak: self.violation_streak(),
            batches_seen: self.batches_seen(),
            window: self.window().cloned(),
            window_degraded: self.window_degraded().map(str::to_string),
            reference_ecdf: self.reference_ecdf().map(<[EcdfSketch]>::to_vec),
        }
    }

    /// Restores a monitor from an artifact, reattaching a restored
    /// predictor. The report history does not survive the restart (ship it
    /// to a log store if it must), but the EWMA value, debounce streak,
    /// batch numbering, open streaming window and reference ECDFs do. The
    /// raw reference *outputs* do not — re-call
    /// [`BatchMonitor::retain_reference_outputs`] if the exact-path drift
    /// tests are needed; the sketched path works immediately.
    pub fn from_artifact(
        artifact: MonitorArtifact,
        predictor: PerformancePredictor,
    ) -> Result<Self, CoreError> {
        check_version("monitor", artifact.version)?;
        Self::from_parts(
            predictor,
            artifact.policy,
            artifact.smoothed,
            artifact.violation_streak,
            artifact.batches_seen,
            artifact.window,
            artifact.window_degraded,
            artifact.reference_ecdf,
        )
    }
}

/// Self-contained snapshot of one serving deployment: the fitted predictor
/// plus the monitor's alarm state, bundled so a single JSON value carries
/// everything a serving daemon needs (minus the black box model handle,
/// which is reattached at restore time like for the individual artifacts).
/// This is the unit `lvpd` accepts on `register` and writes back out when
/// snapshotting its registry — one bundle per `(tenant, model, version)`
/// deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingArtifact {
    /// The monitor's fitted predictor.
    pub predictor: PredictorArtifact,
    /// The monitor's policy and alarm state (EWMA, streak, open window).
    pub monitor: MonitorArtifact,
}

impl ServingArtifact {
    /// Bundles a live monitor (and the predictor inside it) into one
    /// deployable artifact.
    pub fn from_monitor(monitor: &BatchMonitor) -> Self {
        Self {
            predictor: monitor.predictor().to_artifact(),
            monitor: monitor.to_artifact(),
        }
    }

    /// Restores the bundled monitor, reattaching the black box model the
    /// predictor scores with. State carries over bit-identically, open
    /// streaming window included.
    pub fn into_monitor(self, model: Arc<dyn BlackBoxModel>) -> Result<BatchMonitor, CoreError> {
        let predictor = PerformancePredictor::from_artifact(self.predictor, model)?;
        BatchMonitor::from_artifact(self.monitor, predictor)
    }
}

/// One-call check that a restored validator agrees with the original on a
/// batch of outputs (deployment smoke-test helper).
pub fn verdicts_identical(
    a: &PerformanceValidator,
    b: &PerformanceValidator,
    proba: &DenseMatrix,
) -> Result<bool, CoreError> {
    let va: ValidationOutcome = a.validate_outputs(proba)?;
    let vb: ValidationOutcome = b.validate_outputs(proba)?;
    Ok(va.within_threshold == vb.within_threshold
        && va.confidence.to_bits() == vb.confidence.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PredictorConfig, ValidatorConfig};
    use lvp_corruptions::standard_tabular_suite;
    use lvp_dataframe::toy_frame;
    use lvp_models::train_logistic_regression;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fitted() -> (
        Arc<dyn BlackBoxModel>,
        lvp_dataframe::DataFrame,
        lvp_dataframe::DataFrame,
    ) {
        let df = toy_frame(250);
        let mut rng = StdRng::seed_from_u64(41);
        let (train, rest) = df.split_frac(0.4, &mut rng);
        let (test, serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
        (model, test, serving)
    }

    #[test]
    fn artifact_round_trip_preserves_predictions() {
        let (model, test, serving) = fitted();
        let mut rng = StdRng::seed_from_u64(41);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let before = predictor.predict(&serving).unwrap();

        let artifact = predictor.to_artifact();
        assert_eq!(artifact.version, ARTIFACT_VERSION);
        assert_eq!(
            artifact.schema_fingerprint,
            Some(test.schema().fingerprint())
        );
        let restored = PerformancePredictor::from_artifact(artifact, model).unwrap();
        let after = restored.predict(&serving).unwrap();
        assert_eq!(before, after);
        assert_eq!(restored.test_score(), predictor.test_score());
        assert_eq!(
            restored.schema_fingerprint(),
            predictor.schema_fingerprint()
        );
    }

    #[test]
    fn validator_artifact_round_trip_preserves_verdicts() {
        let (model, test, serving) = fitted();
        let mut rng = StdRng::seed_from_u64(7);
        let gens = standard_tabular_suite(test.schema());
        let validator = PerformanceValidator::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &ValidatorConfig::fast(0.08),
            &mut rng,
        )
        .unwrap();

        let json = to_json(&validator.to_artifact()).unwrap();
        let artifact: ValidatorArtifact = from_json(&json).unwrap();
        let restored = PerformanceValidator::from_artifact(artifact, Arc::clone(&model)).unwrap();

        let proba = model.predict_proba(&serving);
        assert!(verdicts_identical(&validator, &restored, &proba).unwrap());
        assert_eq!(restored.threshold(), validator.threshold());
        assert_eq!(restored.test_score(), validator.test_score());
        let before = validator.validate(&serving).unwrap();
        let after = restored.validate(&serving).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn monitor_artifact_restores_debounce_state() {
        let (model, test, _) = fitted();
        let mut rng = StdRng::seed_from_u64(8);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let policy = MonitorPolicy {
            threshold: 0.2,
            consecutive_violations: 3,
            ewma_alpha: 0.5,
            ..MonitorPolicy::default()
        };
        let mut monitor = BatchMonitor::new(predictor, policy).unwrap();
        // Two violations — one short of the alarm.
        monitor.observe_estimate(0.0);
        monitor.observe_estimate(0.0);
        assert!(!monitor.alarming());

        let json = to_json(&monitor.to_artifact()).unwrap();
        let artifact: MonitorArtifact = from_json(&json).unwrap();
        let predictor2 = PerformancePredictor::from_artifact(
            monitor.predictor().to_artifact(),
            Arc::clone(&model),
        )
        .unwrap();
        let mut restored = BatchMonitor::from_artifact(artifact, predictor2).unwrap();
        assert_eq!(restored.batches_seen(), 2);
        assert_eq!(restored.violation_streak(), 2);
        assert_eq!(restored.smoothed(), monitor.smoothed());

        // The third violation lands *after* the restart — the streak
        // carried over, so it alarms exactly on schedule...
        let r_restored = restored.observe_estimate(0.0);
        // ...matching what the uninterrupted monitor reports.
        let r_live = monitor.observe_estimate(0.0);
        assert_eq!(r_restored, r_live);
        assert!(r_restored.alarm);
        assert_eq!(r_restored.batch_index, 2);
    }

    #[test]
    fn artifact_rejects_wrong_class_count() {
        let (model, test, _) = fitted();
        let mut rng = StdRng::seed_from_u64(42);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let mut artifact = predictor.to_artifact();
        artifact.n_feature_dims = 63; // pretend 3 classes
        artifact.n_classes = Some(3);
        assert!(PerformancePredictor::from_artifact(artifact, model).is_err());
    }

    #[test]
    fn validator_artifact_rejects_wrong_class_count() {
        let (model, test, _) = fitted();
        let mut rng = StdRng::seed_from_u64(43);
        let gens = standard_tabular_suite(test.schema());
        let validator = PerformanceValidator::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &ValidatorConfig::fast(0.05),
            &mut rng,
        )
        .unwrap();
        let mut artifact = validator.to_artifact();
        artifact.test_columns.push(vec![0.5; 8]); // pretend 3 classes
        assert!(PerformanceValidator::from_artifact(artifact, model).is_err());
    }

    #[test]
    fn artifact_rejects_unknown_version() {
        let (model, test, _) = fitted();
        let mut rng = StdRng::seed_from_u64(43);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let mut artifact = predictor.to_artifact();
        artifact.version = 99;
        assert!(PerformancePredictor::from_artifact(artifact, model).is_err());
    }

    #[test]
    fn version_1_predictor_artifacts_still_load() {
        let (model, test, serving) = fitted();
        let mut rng = StdRng::seed_from_u64(44);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let mut artifact = predictor.to_artifact();
        // A v1 artifact carries no input contract.
        artifact.version = 1;
        artifact.n_classes = None;
        artifact.schema_fingerprint = None;
        let json = to_json(&artifact).unwrap();
        let artifact: PredictorArtifact = from_json(&json).unwrap();
        let restored = PerformancePredictor::from_artifact(artifact, model).unwrap();
        // Without a recorded fingerprint the schema check is skipped.
        assert_eq!(
            restored.predict(&serving).unwrap(),
            predictor.predict(&serving).unwrap()
        );
    }

    #[test]
    fn version_2_validator_artifacts_load_and_validate_identically() {
        // A v2 artifact predates the sketch era: no `test_ecdf` field at
        // all in its JSON. Serialize through a v2-shaped mirror struct to
        // prove missing-field tolerance (not just `null` tolerance), then
        // check the restored validator agrees bit-for-bit on both the
        // exact and the sketched validation paths.
        #[derive(Serialize)]
        struct ValidatorArtifactV2 {
            version: u32,
            classifier: GbdtClassifier,
            test_columns: Vec<Vec<f64>>,
            test_score: f64,
            threshold: f64,
            metric: MetricTag,
            use_ks_features: bool,
            schema_fingerprint: Option<u64>,
        }

        let (model, test, serving) = fitted();
        let mut rng = StdRng::seed_from_u64(9);
        let gens = standard_tabular_suite(test.schema());
        let validator = PerformanceValidator::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &ValidatorConfig::fast(0.08),
            &mut rng,
        )
        .unwrap();

        let full = validator.to_artifact();
        assert_eq!(full.version, ARTIFACT_VERSION);
        assert!(full.test_ecdf.is_some());
        let v2 = ValidatorArtifactV2 {
            version: 2,
            classifier: full.classifier.clone(),
            test_columns: full.test_columns.clone(),
            test_score: full.test_score,
            threshold: full.threshold,
            metric: full.metric,
            use_ks_features: full.use_ks_features,
            schema_fingerprint: full.schema_fingerprint,
        };
        let json = to_json(&v2).unwrap();
        assert!(!json.contains("test_ecdf"), "field genuinely absent");
        let artifact: ValidatorArtifact = from_json(&json).unwrap();
        assert_eq!(artifact.test_ecdf, None);
        let restored = PerformanceValidator::from_artifact(artifact, Arc::clone(&model)).unwrap();

        // The missing sketches were rebuilt from the retained columns —
        // identical to the freshly fitted state.
        assert_eq!(restored.test_ecdf(), validator.test_ecdf());
        let proba = model.predict_proba(&serving);
        assert!(verdicts_identical(&validator, &restored, &proba).unwrap());
        let sketch = crate::BatchSketch::from_outputs(&proba);
        let a = validator.validate_sketch(&sketch).unwrap();
        let b = restored.validate_sketch(&sketch).unwrap();
        assert_eq!(a.within_threshold, b.within_threshold);
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
    }

    #[test]
    fn version_2_monitor_artifacts_still_load() {
        #[derive(Serialize)]
        struct MonitorArtifactV2 {
            version: u32,
            policy: MonitorPolicy,
            smoothed: Option<f64>,
            violation_streak: usize,
            batches_seen: usize,
        }

        let (model, test, _) = fitted();
        let mut rng = StdRng::seed_from_u64(10);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let v2 = MonitorArtifactV2 {
            version: 2,
            policy: MonitorPolicy::default(),
            smoothed: Some(0.9),
            violation_streak: 1,
            batches_seen: 7,
        };
        let json = to_json(&v2).unwrap();
        let artifact: MonitorArtifact = from_json(&json).unwrap();
        assert_eq!(artifact.window, None);
        assert_eq!(artifact.reference_ecdf, None);
        let restored = BatchMonitor::from_artifact(artifact, predictor).unwrap();
        assert_eq!(restored.batches_seen(), 7);
        assert_eq!(restored.violation_streak(), 1);
        assert_eq!(restored.smoothed(), Some(0.9));
        assert!(restored.window().is_none());
    }

    #[test]
    fn version_3_predictor_artifacts_load_into_quantile_only_intervals() {
        // A v3 artifact predates the interval era: neither `interval_alpha`
        // nor `calibration_residuals` exist in its JSON. Serialize through
        // a v3-shaped mirror struct to prove missing-field tolerance.
        #[derive(Serialize)]
        struct PredictorArtifactV3 {
            version: u32,
            regressor: RandomForestRegressor,
            metric: MetricTag,
            test_score: f64,
            n_feature_dims: usize,
            n_classes: Option<usize>,
            schema_fingerprint: Option<u64>,
        }

        let (model, test, serving) = fitted();
        let mut rng = StdRng::seed_from_u64(46);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let full = predictor.to_artifact();
        assert_eq!(full.interval_alpha, Some(crate::DEFAULT_INTERVAL_ALPHA));
        assert!(full.calibration_residuals.is_some());
        let v3 = PredictorArtifactV3 {
            version: 3,
            regressor: full.regressor.clone(),
            metric: full.metric,
            test_score: full.test_score,
            n_feature_dims: full.n_feature_dims,
            n_classes: full.n_classes,
            schema_fingerprint: full.schema_fingerprint,
        };
        let json = to_json(&v3).unwrap();
        assert!(!json.contains("interval_alpha"), "field genuinely absent");
        assert!(!json.contains("calibration_residuals"));
        let artifact: PredictorArtifact = from_json(&json).unwrap();
        assert_eq!(artifact.interval_alpha, None);
        assert_eq!(artifact.calibration_residuals, None);
        let restored = PerformancePredictor::from_artifact(artifact, model).unwrap();
        // Point predictions are untouched by the missing interval state...
        assert_eq!(
            restored.predict(&serving).unwrap().to_bits(),
            predictor.predict(&serving).unwrap().to_bits()
        );
        // ...and intervals fall back to bare ensemble quantiles at the
        // default alpha: valid, just narrower than the calibrated ones.
        assert_eq!(restored.interval_alpha(), crate::DEFAULT_INTERVAL_ALPHA);
        assert!(restored.calibration_residuals().is_none());
        let narrow = restored.predict_interval(&serving).unwrap();
        narrow.validate().unwrap();
        let calibrated = predictor.predict_interval(&serving).unwrap();
        assert!(
            narrow.width() < calibrated.width(),
            "{narrow:?} vs {calibrated:?}"
        );
    }

    #[test]
    fn version_3_monitor_policies_load_into_the_threshold_mode() {
        // Pre-v4 policy JSON has no `mode` field; it must keep the legacy
        // threshold behavior bit for bit.
        #[derive(Serialize)]
        struct MonitorPolicyV3 {
            threshold: f64,
            consecutive_violations: usize,
            ewma_alpha: f64,
        }
        #[derive(Serialize)]
        struct MonitorArtifactV3 {
            version: u32,
            policy: MonitorPolicyV3,
            smoothed: Option<f64>,
            violation_streak: usize,
            batches_seen: usize,
        }

        let (model, test, _) = fitted();
        let mut rng = StdRng::seed_from_u64(47);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let v3 = MonitorArtifactV3 {
            version: 3,
            policy: MonitorPolicyV3 {
                threshold: 0.1,
                consecutive_violations: 2,
                ewma_alpha: 1.0,
            },
            smoothed: Some(0.9),
            violation_streak: 1,
            batches_seen: 4,
        };
        let json = to_json(&v3).unwrap();
        assert!(!json.contains("mode"), "field genuinely absent");
        let artifact: MonitorArtifact = from_json(&json).unwrap();
        assert_eq!(artifact.policy.mode, None);
        let mut restored = BatchMonitor::from_artifact(artifact, predictor).unwrap();
        assert_eq!(restored.policy().alarm_mode(), crate::AlarmMode::Threshold);
        // Threshold-mode semantics: a relative-drop violation, no interval
        // on the report.
        let r = restored.observe_estimate(0.0);
        assert!(r.raw_violation && r.interval.is_none(), "{r:?}");
    }

    #[test]
    fn version_4_artifacts_round_trip_interval_state_bit_identically() {
        let (model, test, serving) = fitted();
        let mut rng = StdRng::seed_from_u64(48);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let mut monitor =
            BatchMonitor::new(predictor, MonitorPolicy::default().with_interval_alarm()).unwrap();
        let mut rng2 = StdRng::seed_from_u64(49);
        monitor.observe(&serving.sample_n(60, &mut rng2)).unwrap();
        // Leave a streaming window open across the round trip.
        monitor
            .observe_chunk(&serving.sample_n(40, &mut rng2))
            .unwrap();

        let json = to_json(&ServingArtifact::from_monitor(&monitor)).unwrap();
        let bundle: ServingArtifact = from_json(&json).unwrap();
        assert_eq!(bundle.predictor.version, ARTIFACT_VERSION);
        assert_eq!(bundle.monitor.policy.mode, Some(crate::AlarmMode::Interval));
        let mut restored = bundle.into_monitor(Arc::clone(&model)).unwrap();
        // Calibration residuals carried over bit for bit.
        assert_eq!(
            restored.predictor().calibration_residuals(),
            monitor.predictor().calibration_residuals()
        );
        // Re-serializing the restored deployment is byte-identical,
        // open window included.
        assert_eq!(
            to_json(&ServingArtifact::from_monitor(&restored)).unwrap(),
            json
        );
        // Both monitors finish the carried-over window with the exact same
        // interval report.
        let extra = serving.sample_n(40, &mut rng2);
        restored.observe_chunk(&extra).unwrap();
        monitor.observe_chunk(&extra).unwrap();
        let r_restored = restored.finish_window().unwrap();
        let r_live = monitor.finish_window().unwrap();
        assert_eq!(r_restored, r_live);
        let iv = r_restored.interval.unwrap();
        iv.validate().unwrap();
    }

    #[test]
    fn open_window_survives_an_artifact_round_trip_bit_identically() {
        let (model, test, serving) = fitted();
        let mut rng = StdRng::seed_from_u64(11);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let mut monitor = BatchMonitor::new(predictor, MonitorPolicy::default()).unwrap();
        monitor.retain_reference_outputs(&test).unwrap();

        // Open a window, stream half the batch, then "crash".
        let rows: Vec<usize> = (0..serving.n_rows()).collect();
        let (first_half, second_half) = rows.split_at(rows.len() / 2);
        for chunk in first_half.chunks(11) {
            monitor.observe_chunk(&serving.select_rows(chunk)).unwrap();
        }
        let json = to_json(&monitor.to_artifact()).unwrap();

        // Restore and stream the remaining rows into the carried-over
        // window; an uninterrupted monitor does the same without the
        // restart. The final reports must agree bit for bit.
        let artifact: MonitorArtifact = from_json(&json).unwrap();
        let predictor2 = PerformancePredictor::from_artifact(
            monitor.predictor().to_artifact(),
            Arc::clone(&model),
        )
        .unwrap();
        let mut restored = BatchMonitor::from_artifact(artifact, predictor2).unwrap();
        assert_eq!(restored.window(), monitor.window());
        for chunk in second_half.chunks(11) {
            restored.observe_chunk(&serving.select_rows(chunk)).unwrap();
            monitor.observe_chunk(&serving.select_rows(chunk)).unwrap();
        }
        let r_restored = restored.finish_window().unwrap();
        let r_live = monitor.finish_window().unwrap();
        assert_eq!(r_restored.estimate.to_bits(), r_live.estimate.to_bits());
        assert_eq!(
            r_restored.telemetry.per_class_ks,
            r_live.telemetry.per_class_ks
        );
    }

    #[test]
    fn serving_artifact_bundles_predictor_and_monitor_state() {
        let (model, test, _) = fitted();
        let mut rng = StdRng::seed_from_u64(12);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let mut monitor = BatchMonitor::new(predictor, MonitorPolicy::default()).unwrap();
        monitor.observe_estimate(0.0);

        let json = to_json(&ServingArtifact::from_monitor(&monitor)).unwrap();
        let bundle: ServingArtifact = from_json(&json).unwrap();
        let mut restored = bundle.into_monitor(Arc::clone(&model)).unwrap();
        assert_eq!(restored.batches_seen(), 1);
        assert_eq!(restored.violation_streak(), 1);
        assert_eq!(restored.smoothed(), monitor.smoothed());
        // Both continue identically.
        let r_restored = restored.observe_estimate(0.0);
        let r_live = monitor.observe_estimate(0.0);
        assert_eq!(r_restored, r_live);
        // Re-bundling the restored monitor is byte-identical to re-bundling
        // the live one: nothing was lost in the round trip.
        assert_eq!(
            to_json(&ServingArtifact::from_monitor(&restored)).unwrap(),
            to_json(&ServingArtifact::from_monitor(&monitor)).unwrap()
        );
    }

    #[test]
    fn save_and_load_json_round_trip_on_disk() {
        let (model, test, _) = fitted();
        let mut rng = StdRng::seed_from_u64(45);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let path = std::env::temp_dir().join("lvp_predictor_artifact_test.json");
        save_json(&predictor.to_artifact(), &path).unwrap();
        let artifact: PredictorArtifact = load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(PerformancePredictor::from_artifact(artifact, model).is_ok());
    }

    #[test]
    fn load_json_reports_missing_file() {
        let err = load_json::<PredictorArtifact>("/nonexistent/lvp-artifact.json").unwrap_err();
        assert!(err.message.contains("read artifact"));
        assert_eq!(err.kind(), CoreErrorKind::Io);
    }

    #[test]
    fn envelope_round_trip_and_checksum() {
        let payload = b"{\"hello\": [1, 2, 3]}";
        let framed = wrap_envelope(payload);
        assert!(is_enveloped(&framed));
        assert!(!is_enveloped(payload));
        assert_eq!(unwrap_envelope(&framed).unwrap(), payload);
        // The checksum is a stable function of the bytes.
        assert_eq!(checksum64(payload), checksum64(payload));
        assert_ne!(checksum64(payload), checksum64(b"{\"hello\": [1, 2, 4]}"));
        // FNV-1a reference value: hash of the empty input is the offset
        // basis, hash of "a" is a published constant.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn unwrap_envelope_types_every_defect() {
        let framed = wrap_envelope(b"payload bytes here");

        // Truncation anywhere inside the payload → Truncated.
        for cut in [framed.len() - 1, framed.len() - 10] {
            let err = unwrap_envelope(&framed[..cut]).unwrap_err();
            assert_eq!(err.kind(), CoreErrorKind::Truncated, "{err}");
        }
        // Truncation inside the header itself → CorruptHeader (no
        // newline ever arrives).
        let err = unwrap_envelope(&framed[..4]).unwrap_err();
        assert_eq!(err.kind(), CoreErrorKind::CorruptHeader, "{err}");

        // A single flipped bit in the payload → ChecksumMismatch.
        let mut flipped = framed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        let err = unwrap_envelope(&flipped).unwrap_err();
        assert_eq!(err.kind(), CoreErrorKind::ChecksumMismatch, "{err}");

        // Trailing garbage beyond the declared frame → ChecksumMismatch.
        let mut long = framed.clone();
        long.extend_from_slice(b"junk");
        let err = unwrap_envelope(&long).unwrap_err();
        assert_eq!(err.kind(), CoreErrorKind::ChecksumMismatch, "{err}");

        // A mangled header → CorruptHeader.
        let mut bad_header = framed;
        bad_header[7] = b'x'; // clobber the version field
        let err = unwrap_envelope(&bad_header).unwrap_err();
        assert_eq!(err.kind(), CoreErrorKind::CorruptHeader, "{err}");

        // Not enveloped at all → CorruptHeader from unwrap (load_json
        // would instead take the legacy bare-JSON path).
        let err = unwrap_envelope(b"{\"version\": 4}").unwrap_err();
        assert_eq!(err.kind(), CoreErrorKind::CorruptHeader, "{err}");
    }

    #[test]
    fn save_json_writes_envelope_and_load_json_detects_damage() {
        let artifact = MetricTag::from(Metric::Auc);
        let dir = std::env::temp_dir().join("lvp_envelope_damage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        save_json(&artifact, &path).unwrap();

        // On disk: envelope header + JSON payload; no .tmp left behind.
        let bytes = std::fs::read(&path).unwrap();
        assert!(is_enveloped(&bytes));
        assert!(!dir.join("artifact.json.tmp").exists());
        let reloaded: MetricTag = load_json(&path).unwrap();
        assert_eq!(Metric::from(reloaded), Metric::Auc);

        // Truncate the file (crash mid-write of a non-atomic writer) →
        // typed Truncated error, not serde garbage.
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let err = load_json::<MetricTag>(&path).unwrap_err();
        assert_eq!(err.kind(), CoreErrorKind::Truncated, "{err}");
        assert!(err.message.contains("artifact"), "{err}");

        // Flip a payload bit (bit rot) → typed ChecksumMismatch.
        let mut rotted = bytes.clone();
        let last = rotted.len() - 1;
        rotted[last] ^= 0x04;
        std::fs::write(&path, &rotted).unwrap();
        let err = load_json::<MetricTag>(&path).unwrap_err();
        assert_eq!(err.kind(), CoreErrorKind::ChecksumMismatch, "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_json_accepts_legacy_bare_json() {
        // Artifacts written before the envelope existed are bare JSON;
        // they must keep loading through the checksummed loader.
        let path = std::env::temp_dir().join("lvp_legacy_bare_artifact.json");
        std::fs::write(&path, to_json(&MetricTag::from(Metric::Accuracy)).unwrap()).unwrap();
        let tag: MetricTag = load_json(&path).unwrap();
        assert_eq!(Metric::from(tag), Metric::Accuracy);
        // Re-saving upgrades the file to envelope form in place.
        save_json(&tag, &path).unwrap();
        assert!(is_enveloped(&std::fs::read(&path).unwrap()));
        let tag: MetricTag = load_json(&path).unwrap();
        assert_eq!(Metric::from(tag), Metric::Accuracy);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_durable_replaces_not_destroys() {
        let path = std::env::temp_dir().join("lvp_atomic_write_test.bin");
        atomic_write_durable(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write_durable(&path, b"second generation").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second generation");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metric_tag_round_trip() {
        assert_eq!(Metric::from(MetricTag::from(Metric::Auc)), Metric::Auc);
        assert_eq!(
            Metric::from(MetricTag::from(Metric::Accuracy)),
            Metric::Accuracy
        );
    }
}
