//! Task-independent dataset-shift detection baselines (§6.2).
//!
//! All three baselines answer the same question as the performance
//! validator — "should we trust the predictions on this serving batch?" —
//! but via fixed hypothesis tests instead of a learned model:
//!
//! * [`RelationalShiftDetector`] (REL) tests the *raw input columns*
//!   (KS for numeric, χ² for categorical) with Bonferroni correction,
//! * [`BbseDetector`] (BBSE, Lipton et al. 2018) KS-tests the per-class
//!   softmax outputs of the black box model,
//! * [`BbseHardDetector`] (BBSEh, Rabanser et al. 2019) χ²-tests the
//!   histogram of *predicted classes*.
//!
//! Following Rabanser et al., each test compares against α = 0.05 (with
//! Bonferroni correction across the multiple tests of REL and BBSE).

use lvp_dataframe::{ColumnType, DataFrame};
use lvp_models::BlackBoxModel;
use lvp_stats::{bonferroni_alpha, chi2_test_counts, ks_two_sample};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Family-wise significance level used by all baselines.
pub const ALPHA: f64 = 0.05;

/// A task-independent shift detector that raises an alarm on a serving
/// batch.
pub trait Baseline: Send + Sync {
    /// Short display name.
    fn name(&self) -> &str;

    /// `true` when the detector finds a significant shift — i.e. the
    /// predictions on this batch should *not* be trusted.
    fn detects_shift(&self, serving: &DataFrame) -> bool;
}

/// REL: univariate shift tests on the raw input columns.
pub struct RelationalShiftDetector {
    reference: DataFrame,
}

impl RelationalShiftDetector {
    /// Stores the reference (held-out test) data for later comparisons.
    pub fn new(reference: DataFrame) -> Self {
        Self { reference }
    }

    fn categorical_counts(
        reference: &[Option<String>],
        serving: &[Option<String>],
    ) -> (Vec<f64>, Vec<f64>) {
        let mut categories: BTreeMap<&str, usize> = BTreeMap::new();
        for v in reference.iter().chain(serving).flatten() {
            let next = categories.len();
            categories.entry(v.as_str()).or_insert(next);
        }
        // Missing values form their own category: nulls appearing only in
        // the serving data are exactly the shift REL should notice.
        let null_idx = categories.len();
        let mut counts_a = vec![0.0; categories.len() + 1];
        let mut counts_b = vec![0.0; categories.len() + 1];
        for v in reference {
            match v {
                Some(s) => counts_a[categories[s.as_str()]] += 1.0,
                None => counts_a[null_idx] += 1.0,
            }
        }
        for v in serving {
            match v {
                Some(s) => counts_b[categories[s.as_str()]] += 1.0,
                None => counts_b[null_idx] += 1.0,
            }
        }
        (counts_a, counts_b)
    }
}

impl Baseline for RelationalShiftDetector {
    fn name(&self) -> &str {
        "REL"
    }

    fn detects_shift(&self, serving: &DataFrame) -> bool {
        let schema = self.reference.schema();
        let n_tests = schema
            .fields()
            .iter()
            .filter(|f| matches!(f.ty, ColumnType::Numeric | ColumnType::Categorical))
            .count();
        if n_tests == 0 {
            return false;
        }
        let alpha = bonferroni_alpha(ALPHA, n_tests);
        for (i, field) in schema.fields().iter().enumerate() {
            match field.ty {
                ColumnType::Numeric => {
                    let a: Vec<f64> = self
                        .reference
                        .column(i)
                        .as_numeric()
                        .map_or_else(|_| Vec::new(), |v| v.iter().flatten().copied().collect());
                    let b: Vec<f64> = serving
                        .column(i)
                        .as_numeric()
                        .map_or_else(|_| Vec::new(), |v| v.iter().flatten().copied().collect());
                    // Missing-value asymmetry is itself a shift signal.
                    let null_a = self.reference.column(i).null_count() as f64
                        / self.reference.n_rows().max(1) as f64;
                    let null_b =
                        serving.column(i).null_count() as f64 / serving.n_rows().max(1) as f64;
                    if (null_b - null_a).abs() > 0.10 {
                        return true;
                    }
                    if ks_two_sample(&a, &b).rejects_at(alpha) {
                        return true;
                    }
                }
                ColumnType::Categorical => {
                    let (Ok(ref_vals), Ok(srv_vals)) = (
                        self.reference.column(i).as_categorical(),
                        serving.column(i).as_categorical(),
                    ) else {
                        continue;
                    };
                    let (ca, cb) = Self::categorical_counts(ref_vals, srv_vals);
                    if chi2_test_counts(&ca, &cb).rejects_at(alpha) {
                        return true;
                    }
                }
                // Raw shift tests are not applicable to text/image columns
                // (the paper notes REL "was not applicable to the image
                // dataset").
                ColumnType::Text | ColumnType::Image => {}
            }
        }
        false
    }
}

/// BBSE: Kolmogorov–Smirnov tests on the per-class softmax outputs of the
/// black box model.
pub struct BbseDetector {
    model: Arc<dyn BlackBoxModel>,
    test_outputs: lvp_linalg::DenseMatrix,
}

impl BbseDetector {
    /// Records the model's outputs on the held-out test data.
    pub fn new(model: Arc<dyn BlackBoxModel>, test: &DataFrame) -> Self {
        let test_outputs = model.predict_proba(test);
        Self {
            model,
            test_outputs,
        }
    }
}

impl Baseline for BbseDetector {
    fn name(&self) -> &str {
        "BBSE"
    }

    fn detects_shift(&self, serving: &DataFrame) -> bool {
        let proba = self.model.predict_proba(serving);
        let alpha = bonferroni_alpha(ALPHA, proba.cols());
        (0..proba.cols()).any(|class| {
            let a = self.test_outputs.column(class);
            let b = proba.column(class);
            ks_two_sample(&a, &b).rejects_at(alpha)
        })
    }
}

/// BBSEh: χ² test on the counts of *predicted classes*.
pub struct BbseHardDetector {
    model: Arc<dyn BlackBoxModel>,
    test_class_counts: Vec<f64>,
}

impl BbseHardDetector {
    /// Records the model's predicted-class histogram on the held-out test
    /// data.
    pub fn new(model: Arc<dyn BlackBoxModel>, test: &DataFrame) -> Self {
        let proba = model.predict_proba(test);
        let mut counts = vec![0.0; model.n_classes()];
        for c in proba.argmax_rows() {
            counts[c] += 1.0;
        }
        Self {
            model,
            test_class_counts: counts,
        }
    }
}

impl Baseline for BbseHardDetector {
    fn name(&self) -> &str {
        "BBSEh"
    }

    fn detects_shift(&self, serving: &DataFrame) -> bool {
        let proba = self.model.predict_proba(serving);
        let mut counts = vec![0.0; self.model.n_classes()];
        for c in proba.argmax_rows() {
            counts[c] += 1.0;
        }
        // Two-sample homogeneity test: the reference histogram is itself a
        // finite sample, so a goodness-of-fit test against it (treating it
        // as the exact null distribution) under-counts the variance and
        // false-alarms far above the nominal level.
        chi2_test_counts(&counts, &self.test_class_counts).rejects_at(ALPHA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::toy_frame;
    use lvp_models::train_logistic_regression;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Arc<dyn BlackBoxModel>, DataFrame, DataFrame) {
        let df = toy_frame(400);
        let mut rng = StdRng::seed_from_u64(21);
        let (train, rest) = df.split_frac(0.5, &mut rng);
        let (test, serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
        (model, test, serving)
    }

    fn nulled(serving: &DataFrame) -> DataFrame {
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        corrupted
    }

    #[test]
    fn rel_quiet_on_clean_data_loud_on_missing_values() {
        let (_, test, serving) = setup();
        let rel = RelationalShiftDetector::new(test);
        assert!(!rel.detects_shift(&serving));
        assert!(rel.detects_shift(&nulled(&serving)));
    }

    #[test]
    fn bbse_quiet_on_clean_data_loud_on_corruption() {
        let (model, test, serving) = setup();
        let bbse = BbseDetector::new(model, &test);
        assert!(!bbse.detects_shift(&serving));
        assert!(bbse.detects_shift(&nulled(&serving)));
    }

    #[test]
    fn bbseh_detects_class_histogram_shift() {
        let (model, test, serving) = setup();
        let bbseh = BbseHardDetector::new(model.clone(), &test);
        assert!(!bbseh.detects_shift(&serving));
        // Serve only rows the model predicts as class 0 — a hard label
        // shift in the predicted-class histogram.
        let proba = model.predict_proba(&serving);
        let only_zero: Vec<usize> = proba
            .argmax_rows()
            .into_iter()
            .enumerate()
            .filter(|(_, c)| *c == 0)
            .map(|(i, _)| i)
            .collect();
        let shifted = serving.select_rows(&only_zero);
        assert!(bbseh.detects_shift(&shifted));
    }

    #[test]
    fn baseline_names() {
        let (model, test, _) = setup();
        assert_eq!(RelationalShiftDetector::new(test.clone()).name(), "REL");
        assert_eq!(BbseDetector::new(model.clone(), &test).name(), "BBSE");
        assert_eq!(BbseHardDetector::new(model, &test).name(), "BBSEh");
    }

    #[test]
    fn rel_counts_nulls_as_their_own_category() {
        let (ca, cb) = RelationalShiftDetector::categorical_counts(
            &[Some("a".into()), Some("b".into())],
            &[None, Some("a".into())],
        );
        assert_eq!(ca, vec![1.0, 1.0, 0.0]);
        assert_eq!(cb, vec![1.0, 0.0, 1.0]);
    }
}
