//! Criterion bench: cold row-major featurization vs the identity-keyed
//! column-block cache on copy-on-write corrupted copies.
//!
//! The Algorithm 1 generation loop featurizes hundreds of corrupted copies
//! of the same held-out frame, and each error generator rewrites only a few
//! columns — the remainder share storage with the original. The cached
//! path re-encodes exactly the touched columns and assembles the matrix
//! from cached blocks; this bench measures the gap on income-shaped data
//! (10 columns) where each copy corrupts 2 of 10 columns. Before/after
//! numbers live in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use lvp_dataframe::DataFrame;
use lvp_featurize::{EncodingCache, FeaturePipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Corrupted CoW copies of `df`, each nulling a few cells in `touched`
/// columns (the other columns keep sharing storage with `df`).
fn corrupted_copies(df: &DataFrame, touched: &[usize], n_copies: usize) -> Vec<DataFrame> {
    (0..n_copies)
        .map(|k| {
            let mut copy = df.clone();
            for &col in touched {
                copy.column_mut(col).set_null(k % df.n_rows());
            }
            copy
        })
        .collect()
}

fn bench_alg1_featurize(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let df = lvp_datasets::income(1000, &mut rng);
    let pipeline = FeaturePipeline::fit(&df, &PipelineConfig::default());
    // 2 of 10 columns touched per copy — the regime the cache targets.
    let copies = corrupted_copies(&df, &[0, 1], 20);

    // Sanity: the cached path must be bit-identical to the cold path.
    let mut check = EncodingCache::new();
    pipeline.transform_cached(&df, &mut check);
    for copy in &copies {
        assert_eq!(
            pipeline.transform_cached(copy, &mut check),
            pipeline.transform(copy)
        );
    }

    // Both timed loops regenerate the corrupted copies, so each cached
    // iteration re-encodes the touched columns for real (fresh storage →
    // fresh ColumnId → cache miss) and only the 8 untouched columns hit.
    c.bench_function("alg1_featurize_cold_20_copies", |b| {
        b.iter(|| {
            corrupted_copies(&df, &[0, 1], 20)
                .iter()
                .map(|copy| pipeline.transform(copy).nnz())
                .sum::<usize>()
        })
    });

    c.bench_function("alg1_featurize_cached_20_copies", |b| {
        // Warm long-lived cache, exactly like the one inside a deployed
        // PipelineModel.
        let mut cache = EncodingCache::new();
        pipeline.transform_cached(&df, &mut cache);
        b.iter(|| {
            corrupted_copies(&df, &[0, 1], 20)
                .iter()
                .map(|copy| pipeline.transform_cached(copy, &mut cache).nnz())
                .sum::<usize>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_alg1_featurize
}
criterion_main!(benches);
