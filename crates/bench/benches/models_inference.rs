//! Criterion bench: black box inference cost per model family. Every
//! corrupted copy in Algorithm 1 costs one batched `predict_proba`, so
//! inference dominates predictor training time.

use criterion::{criterion_group, criterion_main, Criterion};
use lvp_models::{train_model_quick, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let df = lvp_datasets::income(800, &mut rng);
    let (train, serving) = df.split_frac(0.6, &mut rng);

    for kind in ModelKind::TABULAR {
        let model = train_model_quick(kind, &train, &mut rng).unwrap();
        c.bench_function(&format!("{}_predict_proba_320_rows", kind.name()), |b| {
            b.iter(|| model.predict_proba(&serving))
        });
    }

    let images = lvp_datasets::digits(120, &mut rng);
    let (img_train, img_serving) = images.split_frac(0.6, &mut rng);
    let conv = train_model_quick(ModelKind::Conv, &img_train, &mut rng).unwrap();
    c.bench_function("conv_predict_proba_48_images", |b| {
        b.iter(|| conv.predict_proba(&img_serving))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference
}
criterion_main!(benches);
