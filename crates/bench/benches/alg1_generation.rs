//! Criterion bench: the Algorithm 1 data-generation loop, sequential vs
//! parallel.
//!
//! The generation loop dominates predictor fitting cost (hundreds of
//! corrupt → predict → featurize rounds), so it is the target of the
//! deterministic batch engine. Both variants produce bit-identical output;
//! this bench records the wall-clock gap. Before/after numbers live in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use lvp_core::{
    generate_training_examples_instrumented, generate_training_examples_seeded, Metric,
};
use lvp_corruptions::standard_tabular_suite;
use lvp_models::{train_model_quick, BlackBoxModel, ModelKind};
use lvp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_alg1_generation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let df = lvp_datasets::income(600, &mut rng);
    let (train, test) = df.split_frac(0.6, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Lr, &train, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());

    let run = |parallel: bool| {
        generate_training_examples_seeded(
            model.as_ref(),
            &test,
            &gens,
            25,
            5,
            Metric::Accuracy,
            42,
            parallel,
        )
        .expect("accuracy metric fits any class count")
    };
    let registry = Registry::new();
    let run_instrumented = |parallel: bool| {
        generate_training_examples_instrumented(
            model.as_ref(),
            &test,
            &gens,
            25,
            5,
            Metric::Accuracy,
            42,
            parallel,
            Some(&registry),
        )
        .expect("accuracy metric fits any class count")
    };

    // Sanity: all paths must agree before we time them.
    assert_eq!(run(false), run(true));
    assert_eq!(run(false), run_instrumented(false));

    c.bench_function("alg1_generation_sequential_4gens_x25", |b| {
        b.iter(|| run(false))
    });
    c.bench_function("alg1_generation_parallel_4gens_x25", |b| {
        b.iter(|| run(true))
    });
    // Instrumented variants quantify the telemetry overhead (phase timers,
    // counter increments, cache-stat publishing) against the bare loop.
    c.bench_function("alg1_generation_sequential_instrumented", |b| {
        b.iter(|| run_instrumented(false))
    });
    c.bench_function("alg1_generation_parallel_instrumented", |b| {
        b.iter(|| run_instrumented(true))
    });

    // Tree-backed black box: the same loop but every corrupted copy is
    // scored through the GBDT's blocked tree traversal instead of the
    // logistic regression's matmul.
    let xgb: Arc<dyn BlackBoxModel> = Arc::from(
        train_model_quick(ModelKind::Xgb, &train, &mut StdRng::seed_from_u64(7)).unwrap(),
    );
    let run_xgb = |parallel: bool| {
        generate_training_examples_seeded(
            xgb.as_ref(),
            &test,
            &gens,
            25,
            5,
            Metric::Accuracy,
            42,
            parallel,
        )
        .expect("accuracy metric fits any class count")
    };
    assert_eq!(run_xgb(false), run_xgb(true));
    c.bench_function("alg1_generation_sequential_xgb_4gens_x25", |b| {
        b.iter(|| run_xgb(false))
    });
    c.bench_function("alg1_generation_parallel_xgb_4gens_x25", |b| {
        b.iter(|| run_xgb(true))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_alg1_generation
}
criterion_main!(benches);
