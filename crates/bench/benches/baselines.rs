//! Criterion bench: per-batch detection cost of REL / BBSE / BBSEh — the
//! baselines' key practical advantage is being training-free, so their
//! serving-time cost is the relevant number.

use criterion::{criterion_group, criterion_main, Criterion};
use lvp_core::{Baseline, BbseDetector, BbseHardDetector, RelationalShiftDetector};
use lvp_models::{train_model_quick, BlackBoxModel, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_baselines(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let df = lvp_datasets::heart(1_000, &mut rng);
    let (train, rest) = df.split_frac(0.5, &mut rng);
    let (test, serving) = rest.split_frac(0.5, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Lr, &train, &mut rng).unwrap());

    let rel = RelationalShiftDetector::new(test.clone());
    let bbse = BbseDetector::new(Arc::clone(&model), &test);
    let bbseh = BbseHardDetector::new(Arc::clone(&model), &test);

    c.bench_function("rel_detect_250x250", |b| {
        b.iter(|| rel.detects_shift(&serving))
    });
    c.bench_function("bbse_detect_250x250", |b| {
        b.iter(|| bbse.detects_shift(&serving))
    });
    c.bench_function("bbseh_detect_250x250", |b| {
        b.iter(|| bbseh.detects_shift(&serving))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_baselines
}
criterion_main!(benches);
