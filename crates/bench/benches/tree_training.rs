//! Criterion bench: exact vs histogram split finding for tree-ensemble
//! training, at a small and a large training-set size.
//!
//! The small size brackets the crossover: with few rows the per-node sort
//! of the exact finder is cheap and binning overhead matters relatively
//! more; at realistic sizes the histogram finder's one-pass accumulation
//! plus the subtract trick dominate. Numbers live in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use lvp_linalg::{CsrMatrix, DenseMatrix};
use lvp_models::forest::{ForestConfig, RandomForestRegressor};
use lvp_models::gbdt::{GbdtClassifier, GbdtConfig};
use lvp_models::tree::SplitMethod;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_regression(n: usize, d: usize, seed: u64) -> (DenseMatrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| r[0] * r[1] + r[2].sin() + 0.5 * r[3])
        .collect();
    (DenseMatrix::from_rows(&rows).unwrap(), y)
}

fn synthetic_classification(n: usize, d: usize, seed: u64) -> (CsrMatrix, Vec<u32>) {
    let (x, y) = synthetic_regression(n, d, seed);
    let labels: Vec<u32> = y.iter().map(|&v| u32::from(v > 0.0)).collect();
    (CsrMatrix::from_dense(&x), labels)
}

fn bench_tree_training(c: &mut Criterion) {
    for (n, d) in [(200, 16), (1_500, 16)] {
        let (x, y) = synthetic_regression(n, d, 1);
        for method in [SplitMethod::Exact, SplitMethod::Histogram] {
            let cfg = ForestConfig {
                n_trees: 10,
                split_method: method,
                ..ForestConfig::default()
            };
            let tag = match method {
                SplitMethod::Exact => "exact",
                SplitMethod::Histogram => "hist",
            };
            c.bench_function(&format!("forest_fit_{n}x{d}_10_trees_{tag}"), |b| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(2);
                    RandomForestRegressor::fit(&x, &y, &cfg, &mut rng).unwrap()
                })
            });
        }
    }

    let (x, labels) = synthetic_classification(1_200, 24, 3);
    for method in [SplitMethod::Exact, SplitMethod::Histogram] {
        let cfg = GbdtConfig {
            n_rounds: 20,
            max_depth: 4,
            split_method: method,
            ..GbdtConfig::default()
        };
        let tag = match method {
            SplitMethod::Exact => "exact",
            SplitMethod::Histogram => "hist",
        };
        c.bench_function(&format!("gbdt_fit_1200x24_20_rounds_{tag}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(4);
                GbdtClassifier::fit(&x, &labels, 2, &cfg, &mut rng).unwrap()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tree_training
}
criterion_main!(benches);
