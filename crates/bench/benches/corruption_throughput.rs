//! Criterion bench: throughput of every error generator on a tabular
//! frame. Corruption sits in the inner loop of Algorithm 1, so its cost
//! bounds how fast a predictor can be (re)trained.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lvp_corruptions::{standard_tabular_suite, unknown_tabular_suite};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_corruptions(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let df = lvp_datasets::income(500, &mut rng);
    let mut group = c.benchmark_group("corrupt_income_500");
    let mut gens = standard_tabular_suite(df.schema());
    gens.extend(unknown_tabular_suite(df.schema()));
    for gen in gens {
        group.bench_with_input(BenchmarkId::from_parameter(gen.name()), &gen, |b, gen| {
            let mut inner_rng = StdRng::seed_from_u64(2);
            b.iter(|| gen.corrupt(&df, &mut inner_rng));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_corruptions
}
criterion_main!(benches);
