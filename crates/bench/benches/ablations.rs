//! Criterion bench: runtime cost of the featurization variants compared in
//! the quality ablation (`--bin ablations`). The paper's 21-point grid
//! must not be meaningfully slower than coarser summaries to justify its
//! accuracy advantage.

use criterion::{criterion_group, criterion_main, Criterion};
use lvp_core::prediction_statistics;
use lvp_linalg::DenseMatrix;
use lvp_stats::percentiles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_feature_variants(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 5_000;
    let data: Vec<f64> = (0..n * 2).map(|_| rng.gen::<f64>()).collect();
    let proba = DenseMatrix::from_vec(n, 2, data).unwrap();

    c.bench_function("features_vigintiles_5000x2", |b| {
        b.iter(|| prediction_statistics(&proba))
    });

    c.bench_function("features_deciles_5000x2", |b| {
        let grid: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
        b.iter(|| {
            let mut out = Vec::new();
            for col in 0..proba.cols() {
                out.extend(percentiles(&proba.column(col), &grid));
            }
            out
        })
    });

    c.bench_function("features_histogram_5000x2", |b| {
        b.iter(|| {
            let mut bins = vec![0.0f64; 10];
            for row in proba.row_iter() {
                let p_max = row.iter().copied().fold(0.0f64, f64::max);
                bins[((p_max * 10.0) as usize).min(9)] += 1.0;
            }
            bins
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_feature_variants
}
criterion_main!(benches);
