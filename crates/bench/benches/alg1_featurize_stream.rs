//! Criterion bench: exact sort-based featurization vs streaming sketch
//! featurization across batch sizes.
//!
//! The exact path materializes every output column and sorts it
//! (O(n log n) time, O(n) memory per batch); the sketched path folds rows
//! into fixed-size bin counts (O(n) time, O(bins) memory) and reads the
//! percentile grid off the bins. The interesting quantity is the
//! crossover: at small batches the sort is cheap and the sketch's
//! per-row binning overhead dominates, while at large batches the sort's
//! superlinear cost and allocation traffic hand the win to the sketch —
//! which additionally never holds the batch at all. Crossover numbers
//! live in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use lvp_core::{prediction_statistics, BatchSketch};
use lvp_linalg::DenseMatrix;

/// A deterministic two-class probability batch: row `i` maps to the same
/// `[p, 1 − p]` pair for any batch size, so every size benches the same
/// distribution.
fn outputs(rows: usize) -> DenseMatrix {
    let data: Vec<f64> = (0..rows)
        .flat_map(|i| {
            let p = ((i.wrapping_mul(2_654_435_761)) % 100_003) as f64 / 100_003.0;
            [p, 1.0 - p]
        })
        .collect();
    DenseMatrix::from_vec(rows, 2, data).unwrap()
}

fn bench_featurize_stream(c: &mut Criterion) {
    for rows in [1_000usize, 10_000, 100_000, 1_000_000] {
        let proba = outputs(rows);

        // Sanity: the sketched features track the exact ones within the
        // sketch's proven value-error bound.
        let exact = prediction_statistics(&proba);
        let sketch = BatchSketch::from_outputs(&proba);
        let sketched = sketch.prediction_statistics();
        let bound = sketch.value_error_bound() + 1e-12;
        for (e, s) in exact.iter().zip(&sketched) {
            assert!((e - s).abs() <= bound, "exact {e} vs sketched {s}");
        }

        c.bench_function(&format!("featurize_exact_{rows}_rows"), |b| {
            b.iter(|| prediction_statistics(&proba).len())
        });

        // Whole-batch sketch: one pass over the same matrix, directly
        // comparable to the exact path above.
        c.bench_function(&format!("featurize_sketch_{rows}_rows"), |b| {
            b.iter(|| {
                BatchSketch::from_outputs(&proba)
                    .prediction_statistics()
                    .len()
            })
        });

        // The streaming path as the monitor runs it: fold fixed-size row
        // chunks into a fresh sketch (each chunk is materialized, as it
        // would arrive off the wire), then featurize the bins.
        let all: Vec<usize> = (0..rows).collect();
        c.bench_function(&format!("featurize_sketch_chunked_{rows}_rows"), |b| {
            b.iter(|| {
                let mut s = BatchSketch::new(2);
                for chunk in all.chunks(8_192) {
                    s.observe_chunk(&proba.select_rows(chunk)).unwrap();
                }
                s.prediction_statistics().len()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_featurize_stream
}
criterion_main!(benches);
