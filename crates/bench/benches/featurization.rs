//! Criterion bench: feature-pipeline transform cost and the percentile
//! featurization of model outputs (Algorithm 2's serving-time hot path).

use criterion::{criterion_group, criterion_main, Criterion};
use lvp_core::prediction_statistics;
use lvp_featurize::{FeaturePipeline, PipelineConfig};
use lvp_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_pipeline_transform(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let df = lvp_datasets::income(1_000, &mut rng);
    let pipeline = FeaturePipeline::fit(&df, &PipelineConfig::default());
    c.bench_function("pipeline_transform_income_1000", |b| {
        b.iter(|| pipeline.transform(&df))
    });

    let tweets = lvp_datasets::tweets(500, &mut rng);
    let text_pipeline = FeaturePipeline::fit(&tweets, &PipelineConfig::default());
    c.bench_function("pipeline_transform_tweets_500", |b| {
        b.iter(|| text_pipeline.transform(&tweets))
    });
}

fn bench_prediction_statistics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    for &n in &[1_000usize, 10_000] {
        let data: Vec<f64> = (0..n * 2).map(|_| rng.gen::<f64>()).collect();
        let proba = DenseMatrix::from_vec(n, 2, data).unwrap();
        c.bench_function(&format!("prediction_statistics_{n}x2"), |b| {
            b.iter(|| prediction_statistics(&proba))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_pipeline_transform, bench_prediction_statistics
}
criterion_main!(benches);
