//! Criterion bench: fit and serving-time cost of the performance
//! predictor. Serving-time prediction must be cheap enough to run on every
//! batch in an online deployment (§6.1.3's motivation).

use criterion::{criterion_group, criterion_main, Criterion};
use lvp_core::{PerformancePredictor, PredictorConfig};
use lvp_corruptions::standard_tabular_suite;
use lvp_models::tree::SplitMethod;
use lvp_models::{train_model_quick, BlackBoxModel, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_predictor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let df = lvp_datasets::income(600, &mut rng);
    let (train, test) = df.split_frac(0.6, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Lr, &train, &mut rng).unwrap());

    let mut cfg = PredictorConfig::fast();
    cfg.runs_per_generator = 10;
    cfg.clean_copies = 2;
    let gens = standard_tabular_suite(test.schema());

    c.bench_function("predictor_fit_income_240_test_rows", |b| {
        b.iter(|| {
            let mut fit_rng = StdRng::seed_from_u64(2);
            PerformancePredictor::fit(Arc::clone(&model), &test, &gens, &cfg, &mut fit_rng).unwrap()
        })
    });

    // Same fit with the exact split finder as the meta-forest oracle — the
    // histogram-vs-exact gap on the hot predictor-fit path.
    let mut cfg_exact = cfg.clone();
    for forest_cfg in &mut cfg_exact.forest_grid {
        forest_cfg.split_method = SplitMethod::Exact;
    }
    c.bench_function("predictor_fit_income_240_test_rows_exact_splits", |b| {
        b.iter(|| {
            let mut fit_rng = StdRng::seed_from_u64(2);
            PerformancePredictor::fit(Arc::clone(&model), &test, &gens, &cfg_exact, &mut fit_rng)
                .unwrap()
        })
    });

    let mut fit_rng = StdRng::seed_from_u64(3);
    let predictor =
        PerformancePredictor::fit(Arc::clone(&model), &test, &gens, &cfg, &mut fit_rng).unwrap();
    c.bench_function("predictor_predict_serving_240_rows", |b| {
        b.iter(|| predictor.predict(&test).unwrap())
    });
    let proba = model.predict_proba(&test);
    c.bench_function("predictor_predict_from_outputs", |b| {
        b.iter(|| predictor.predict_from_outputs(&proba).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_predictor
}
criterion_main!(benches);
