//! Order statistics and result persistence.

use crate::ResultRow;
use lvp_stats::percentiles;
use serde::Serialize;

/// Order statistics over a sample (e.g. a distribution of absolute
/// prediction errors, matching the paper's box plots and percentile bands).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 5th percentile.
    pub p05: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Lower quartile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample (NaNs ignored; empty samples yield
    /// all zeros).
    pub fn of(values: &[f64]) -> Self {
        let qs = percentiles(values, &[5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 100.0]);
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        let mean = if finite.is_empty() {
            0.0
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        };
        Self {
            n: finite.len(),
            mean,
            p05: qs[0],
            p10: qs[1],
            p25: qs[2],
            median: qs[3],
            p75: qs[4],
            p90: qs[5],
            p95: qs[6],
            max: qs[7],
        }
    }

    /// Adds the summary's fields to a result row.
    pub fn into_row(self, row: ResultRow) -> ResultRow {
        row.with("n", self.n as f64)
            .with("mean", self.mean)
            .with("p05", self.p05)
            .with("p10", self.p10)
            .with("p25", self.p25)
            .with("median", self.median)
            .with("p75", self.p75)
            .with("p90", self.p90)
            .with("p95", self.p95)
            .with("max", self.max)
    }
}

/// Writes result rows as JSON under `results/<name>.json` (relative to the
/// workspace root when run via `cargo run`).
pub fn write_results(name: &str, rows: &[ResultRow]) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(rows) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("# wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize results: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&v);
        assert_eq!(s.n, 100);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn summary_handles_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.median, 0.0);
    }

    #[test]
    fn summary_into_row_adds_fields() {
        let row = Summary::of(&[1.0, 2.0, 3.0]).into_row(ResultRow::new("e", "d", "m", "c"));
        assert_eq!(row.values["n"], 3.0);
        assert_eq!(row.values["median"], 2.0);
    }
}
