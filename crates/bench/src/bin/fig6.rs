//! Figure 6: performance validation for black box models trained by
//! AutoML methods, in the presence of mixtures of known shifts and errors.
//!
//! auto-sklearn-like and TPOT-like searchers produce models for the income
//! dataset; the auto-keras-like architecture search and a larger
//! hand-specified convnet produce models for the digits dataset. Each is
//! validated at t ∈ {3%, 5%, 10%} against the three baselines.
//!
//! `cargo run --release -p lvp-bench --bin fig6 [-- --scale small]`

use lvp_bench::validation::{validation_f1, THRESHOLDS};
use lvp_bench::{prepare_split, write_results, ExperimentEnv, ResultRow};
use lvp_corruptions::{image_suite, standard_tabular_suite, Mixture};
use lvp_datasets::DatasetKind;
use lvp_models::automl::{auto_keras_like, auto_sklearn_like, large_convnet, tpot_like};
use lvp_models::BlackBoxModel;
use std::sync::Arc;

fn main() {
    let env = ExperimentEnv::from_args();
    let mut rows = Vec::new();
    println!(
        "{:<14} {:<8} {:>5} {:>8} {:>8} {:>8} {:>8}",
        "automl", "dataset", "t", "PPM", "BBSE", "BBSEh", "REL"
    );

    type Trainer =
        Box<dyn Fn(&lvp_dataframe::DataFrame, &mut rand::rngs::StdRng) -> Arc<dyn BlackBoxModel>>;
    let searchers: Vec<(&str, DatasetKind, Trainer)> = vec![
        (
            "auto-sklearn",
            DatasetKind::Income,
            Box::new(|train, rng| Arc::from(auto_sklearn_like(train, 6, rng).expect("search"))),
        ),
        (
            "TPOT",
            DatasetKind::Income,
            Box::new(|train, rng| Arc::from(tpot_like(train, 2, 6, rng).expect("search"))),
        ),
        (
            "auto-keras",
            DatasetKind::Digits,
            Box::new(|train, rng| Arc::from(auto_keras_like(train, 3, rng).expect("search"))),
        ),
        (
            "large-convnet",
            DatasetKind::Digits,
            Box::new(|train, rng| Arc::from(large_convnet(train, rng).expect("training"))),
        ),
    ];

    for (name, dataset, trainer) in searchers {
        let stream = format!("fig6/{name}");
        let mut rng = env.rng(&stream);
        let split = prepare_split(dataset, env.scale, &mut rng);
        println!("# running {name} search on {}...", dataset.name());
        let model = trainer(&split.train, &mut rng);

        for threshold in THRESHOLDS {
            let (train_gens, serve_mix) = if dataset.is_image() {
                (
                    image_suite(split.test.schema()),
                    Mixture::from_boxes(image_suite(split.serving.schema())),
                )
            } else {
                (
                    standard_tabular_suite(split.test.schema()),
                    Mixture::from_boxes(standard_tabular_suite(split.serving.schema())),
                )
            };
            let scores = validation_f1(
                Arc::clone(&model),
                &split.test,
                &split.serving,
                &train_gens,
                &serve_mix,
                threshold,
                env.scale,
                &mut rng,
            );
            println!(
                "{:<14} {:<8} {:>5.2} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                name,
                dataset.name(),
                threshold,
                scores["PPM"],
                scores["BBSE"],
                scores["BBSEh"],
                scores["REL"]
            );
            let mut row = ResultRow::new("fig6", dataset.name(), name, format!("t={threshold}"))
                .with("threshold", threshold);
            for (method, f1) in &scores {
                row = row.with(method, *f1);
            }
            rows.push(row);
        }
    }
    write_results("fig6", &rows);
}
