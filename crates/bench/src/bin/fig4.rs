//! Figure 4: sensitivity of the performance predictor to the size of the
//! held-out sample |D_test| it is trained from.
//!
//! Repeats the §6.1.1 experiments (missing values on income, outliers on
//! heart) for |D_test| ∈ {10, 50, 100, 250, 500, 750, 1000, 1500} and
//! reports MAE plus the 10th/90th percentile of the absolute error for
//! lr / dnn / xgb.
//!
//! `cargo run --release -p lvp-bench --bin fig4 [-- --scale small]`

use lvp_bench::{train_for, write_results, ExperimentEnv, ResultRow, Summary};
use lvp_core::PerformancePredictor;
use lvp_corruptions::{ErrorGen, MissingValues, Outliers};
use lvp_datasets::DatasetKind;
use lvp_models::{model_accuracy, ModelKind};
use std::sync::Arc;

const TEST_SIZES: [usize; 8] = [10, 50, 100, 250, 500, 750, 1000, 1500];

fn main() {
    let env = ExperimentEnv::from_args();
    let mut rows = Vec::new();

    let conditions: [(DatasetKind, &str); 2] = [
        (DatasetKind::Income, "missing_values"),
        (DatasetKind::Heart, "outliers"),
    ];

    println!(
        "{:<22} {:<6} {:>8} {:>8} {:>8} {:>8}",
        "condition", "model", "|Dtest|", "p10", "MAE", "p90"
    );

    for (dataset, error_name) in conditions {
        for model_kind in ModelKind::TABULAR {
            let stream = format!(
                "fig4/{}/{}/{}",
                dataset.name(),
                error_name,
                model_kind.name()
            );
            let mut rng = env.rng(&stream);
            // The sweep needs a test pool of at least 1500 rows regardless
            // of scale, so fig4 builds its own split instead of using the
            // default proportions.
            let scale = env.scale;
            let n = scale.dataset_size(dataset).max(5_000);
            let df = lvp_datasets::generate(dataset, n, &mut rng).balance_classes(&mut rng);
            let (source, rest) = df.split_frac(0.3, &mut rng);
            let (test_pool, serving) = rest.split_frac(0.5, &mut rng);
            let split = lvp_bench::SplitSpec {
                train: source,
                test: test_pool,
                serving,
            };
            let model = train_for(model_kind, &split.train, scale, &mut rng);

            for &size in &TEST_SIZES {
                let test_sample = split.test.sample_n(size, &mut rng);
                if test_sample.n_rows() < 4 {
                    continue;
                }
                let gen: Box<dyn ErrorGen> = match error_name {
                    "missing_values" => {
                        Box::new(MissingValues::all_categorical(test_sample.schema()))
                    }
                    _ => Box::new(Outliers::all_numeric(test_sample.schema())),
                };
                let predictor = match PerformancePredictor::fit(
                    Arc::clone(&model),
                    &test_sample,
                    &[gen],
                    &scale.predictor_config(),
                    &mut rng,
                ) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("skipping |Dtest|={size}: {e}");
                        continue;
                    }
                };

                let serve_gen: Box<dyn ErrorGen> = match error_name {
                    "missing_values" => {
                        Box::new(MissingValues::all_categorical(split.serving.schema()))
                    }
                    _ => Box::new(Outliers::all_numeric(split.serving.schema())),
                };
                let mut abs_errors = Vec::new();
                for _ in 0..scale.serving_batches() {
                    let batch = split.serving.sample_n(scale.serving_batch_rows(), &mut rng);
                    let corrupted = serve_gen.corrupt(&batch, &mut rng);
                    let est = predictor.predict(&corrupted).expect("non-empty batch");
                    let truth = model_accuracy(model.as_ref(), &corrupted);
                    abs_errors.push((est - truth).abs());
                }
                let summary = Summary::of(&abs_errors);
                let condition = format!("{} in {}", error_name, dataset.name());
                println!(
                    "{:<22} {:<6} {:>8} {:>8.4} {:>8.4} {:>8.4}",
                    condition,
                    model_kind.name(),
                    size,
                    summary.p10,
                    summary.mean,
                    summary.p90
                );
                rows.push(
                    summary.into_row(
                        ResultRow::new("fig4", dataset.name(), model_kind.name(), condition)
                            .with("test_size", size as f64),
                    ),
                );
            }
        }
    }
    write_results("fig4", &rows);
}
