//! Figure 2: estimation of the prediction quality in the presence of known
//! types (but unknown magnitudes) of errors in the serving data.
//!
//! Per (dataset, model, error type): train the black box model and a
//! performance predictor specialized to that error type, then apply the
//! error generator at random magnitudes to unseen serving batches and
//! report the distribution of the absolute error |estimated − true
//! accuracy| (the quantity behind the paper's box plots).
//!
//! `cargo run --release -p lvp-bench --bin fig2 [-- --scale small]`

use lvp_bench::{prepare_split, train_for, write_results, ExperimentEnv, ResultRow, Summary};
use lvp_core::PerformancePredictor;
use lvp_corruptions::{
    AdversarialLeetspeak, ErrorGen, ImageNoise, ImageRotation, MissingValues, Outliers, Scaling,
    SwappedColumns,
};
use lvp_datasets::DatasetKind;
use lvp_models::{model_accuracy, ModelKind};
use std::sync::Arc;

fn errors_for(kind: DatasetKind, schema: &lvp_dataframe::Schema) -> Vec<Box<dyn ErrorGen>> {
    match kind {
        DatasetKind::Income | DatasetKind::Heart | DatasetKind::Bank => vec![
            Box::new(MissingValues::all_categorical(schema)),
            Box::new(Outliers::all_numeric(schema)),
            Box::new(SwappedColumns::all_pairs(schema)),
            Box::new(Scaling::all_numeric(schema)),
        ],
        DatasetKind::Tweets => vec![Box::new(AdversarialLeetspeak::all_text(schema))],
        DatasetKind::Digits | DatasetKind::Fashion => vec![
            Box::new(ImageNoise::all_images(schema)),
            Box::new(ImageRotation::all_images(schema)),
        ],
    }
}

fn main() {
    let env = ExperimentEnv::from_args();
    let mut rows = Vec::new();

    let cells: Vec<(DatasetKind, Vec<ModelKind>)> = vec![
        (DatasetKind::Income, ModelKind::TABULAR.to_vec()),
        (DatasetKind::Heart, ModelKind::TABULAR.to_vec()),
        (DatasetKind::Bank, ModelKind::TABULAR.to_vec()),
        (DatasetKind::Tweets, ModelKind::TABULAR.to_vec()),
        (DatasetKind::Digits, vec![ModelKind::Conv]),
        (DatasetKind::Fashion, vec![ModelKind::Conv]),
    ];

    println!(
        "{:<10} {:<6} {:<24} {:>8} {:>8} {:>8} {:>8}",
        "dataset", "model", "error", "median", "p25", "p75", "max"
    );

    for (dataset, models) in cells {
        for model_kind in models {
            let stream = format!("fig2/{}/{}", dataset.name(), model_kind.name());
            let mut rng = env.rng(&stream);
            let split = prepare_split(dataset, env.scale, &mut rng);
            let model = train_for(model_kind, &split.train, env.scale, &mut rng);
            let test_acc = model_accuracy(model.as_ref(), &split.test);

            for error in errors_for(dataset, split.test.schema()) {
                let predictor = PerformancePredictor::fit(
                    Arc::clone(&model),
                    &split.test,
                    &[clone_gen(dataset, error.name(), split.test.schema())],
                    &env.scale.predictor_config(),
                    &mut rng,
                )
                .expect("predictor fit succeeds");

                let mut abs_errors = Vec::new();
                for _ in 0..env.scale.serving_batches() {
                    let batch = split
                        .serving
                        .sample_n(env.scale.serving_batch_rows(), &mut rng);
                    let corrupted =
                        error.corrupt_with_model(&batch, Some(model.as_ref()), &mut rng);
                    let est = predictor.predict(&corrupted).expect("non-empty batch");
                    let truth = model_accuracy(model.as_ref(), &corrupted);
                    abs_errors.push((est - truth).abs());
                }
                let summary = Summary::of(&abs_errors);
                println!(
                    "{:<10} {:<6} {:<24} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
                    dataset.name(),
                    model_kind.name(),
                    error.name(),
                    summary.median,
                    summary.p25,
                    summary.p75,
                    summary.max
                );
                rows.push(
                    summary.into_row(
                        ResultRow::new("fig2", dataset.name(), model_kind.name(), error.name())
                            .with("test_accuracy", test_acc),
                    ),
                );
            }
        }
    }
    write_results("fig2", &rows);
}

/// Rebuilds a generator by name so predictor training and serving use
/// independent instances (same semantics, fresh column sampling).
fn clone_gen(kind: DatasetKind, name: &str, schema: &lvp_dataframe::Schema) -> Box<dyn ErrorGen> {
    errors_for(kind, schema)
        .into_iter()
        .find(|g| g.name() == name)
        .expect("generator exists for this dataset")
}
