//! Figure 3: performance prediction quality for linear and non-linear
//! models under increasing amounts of *unknown* error types.
//!
//! The predictor trains on an error distribution where each error type is
//! only present in a `fraction` of its training copies (fraction 0 means
//! the predictor never saw the error type at all); the serving data is
//! corrupted with the full set of error types including the
//! model-entropy-based missing values. Reported: median / 5th / 95th
//! percentile of the absolute error, split into the linear model (`lr`)
//! and the non-linear models (`dnn`, `xgb`).
//!
//! `cargo run --release -p lvp-bench --bin fig3 [-- --scale small]`

use lvp_bench::{prepare_split, train_for, write_results, ExperimentEnv, ResultRow, Summary};
use lvp_core::{PerformancePredictor, PredictorConfig};
use lvp_corruptions::{
    CleanCopy, EntropyMissingValues, ErrorGen, MissingValues, Mixture, Outliers, Scaling,
    SwappedColumns,
};
use lvp_datasets::DatasetKind;
use lvp_models::{model_accuracy, BlackBoxModel, ModelKind};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

const FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// The five §6.1.2 error types (standard suite + entropy-based missing).
fn full_suite(schema: &lvp_dataframe::Schema) -> Vec<Box<dyn ErrorGen>> {
    vec![
        Box::new(MissingValues::all_categorical(schema)),
        Box::new(Outliers::all_numeric(schema)),
        Box::new(SwappedColumns::all_pairs(schema)),
        Box::new(Scaling::all_numeric(schema)),
        Box::new(EntropyMissingValues::all_tabular(schema)),
    ]
}

/// A generator that applies `inner` with probability `fraction` and leaves
/// the data clean otherwise — the partial-exposure training distribution.
struct Partial {
    inner: Box<dyn ErrorGen>,
    fraction: f64,
    name: String,
}

impl ErrorGen for Partial {
    fn name(&self) -> &str {
        &self.name
    }

    fn corrupt(&self, df: &lvp_dataframe::DataFrame, rng: &mut StdRng) -> lvp_dataframe::DataFrame {
        self.corrupt_with_model(df, None, rng)
    }

    fn corrupt_with_model(
        &self,
        df: &lvp_dataframe::DataFrame,
        model: Option<&dyn BlackBoxModel>,
        rng: &mut StdRng,
    ) -> lvp_dataframe::DataFrame {
        if rng.gen::<f64>() < self.fraction {
            self.inner.corrupt_with_model(df, model, rng)
        } else {
            CleanCopy.corrupt(df, rng)
        }
    }
}

fn main() {
    let env = ExperimentEnv::from_args();
    let mut rows = Vec::new();
    let mut linear_by_fraction: Vec<Vec<f64>> = vec![Vec::new(); FRACTIONS.len()];
    let mut nonlinear_by_fraction: Vec<Vec<f64>> = vec![Vec::new(); FRACTIONS.len()];

    for dataset in [DatasetKind::Income, DatasetKind::Heart] {
        for model_kind in ModelKind::TABULAR {
            let stream = format!("fig3/{}/{}", dataset.name(), model_kind.name());
            let mut rng = env.rng(&stream);
            let split = prepare_split(dataset, env.scale, &mut rng);
            let model = train_for(model_kind, &split.train, env.scale, &mut rng);

            for (fi, &fraction) in FRACTIONS.iter().enumerate() {
                // Training exposure: each error type seen only in a
                // `fraction` of its copies. The fraction axis in the figure
                // is "fraction of unknown errors" = 1 - exposure.
                let training_gens: Vec<Box<dyn ErrorGen>> = full_suite(split.test.schema())
                    .into_iter()
                    .map(|inner| {
                        let name = format!("partial({})", inner.name());
                        Box::new(Partial {
                            inner,
                            fraction,
                            name,
                        }) as Box<dyn ErrorGen>
                    })
                    .collect();
                let config = PredictorConfig {
                    ..env.scale.predictor_config()
                };
                let predictor = PerformancePredictor::fit(
                    Arc::clone(&model),
                    &split.test,
                    &training_gens,
                    &config,
                    &mut rng,
                )
                .expect("predictor fit succeeds");

                // Serving: the full mixture, always applied.
                let serve_mix = Mixture::from_boxes(full_suite(split.serving.schema()));
                let mut abs_errors = Vec::new();
                for _ in 0..env.scale.serving_batches() {
                    let batch = split
                        .serving
                        .sample_n(env.scale.serving_batch_rows(), &mut rng);
                    let corrupted =
                        serve_mix.corrupt_with_model(&batch, Some(model.as_ref()), &mut rng);
                    let est = predictor.predict(&corrupted).expect("non-empty batch");
                    let truth = model_accuracy(model.as_ref(), &corrupted);
                    abs_errors.push((est - truth).abs());
                }
                if model_kind == ModelKind::Lr {
                    linear_by_fraction[fi].extend_from_slice(&abs_errors);
                } else {
                    nonlinear_by_fraction[fi].extend_from_slice(&abs_errors);
                }
            }
        }
    }

    println!(
        "{:<10} {:<22} {:>8} {:>8} {:>8}",
        "family", "frac unknown errors", "p05", "median", "p95"
    );
    for (fi, &fraction) in FRACTIONS.iter().enumerate() {
        let unknown = 1.0 - fraction;
        for (family, samples) in [
            ("linear", &linear_by_fraction[fi]),
            ("nonlinear", &nonlinear_by_fraction[fi]),
        ] {
            let summary = Summary::of(samples);
            println!(
                "{:<10} {:<22.2} {:>8.4} {:>8.4} {:>8.4}",
                family, unknown, summary.p05, summary.median, summary.p95
            );
            rows.push(
                summary.into_row(
                    ResultRow::new(
                        "fig3",
                        "income+heart",
                        family,
                        format!("unknown={unknown:.2}"),
                    )
                    .with("fraction_unknown", unknown),
                ),
            );
        }
    }
    write_results("fig3", &rows);
}
