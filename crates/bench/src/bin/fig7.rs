//! Figure 7: prediction quality for black box models trained and hosted by
//! a cloud AutoML service, on mixtures of errors in the income and heart
//! datasets.
//!
//! The model lives behind the simulated [`CloudModelService`] endpoint —
//! the predictor only ever interacts with the opaque handle. Reported:
//! (true accuracy, predicted accuracy) scatter pairs and the MAE (the
//! paper reports MAE 0.0038 on income and 0.0101 on heart).
//!
//! `cargo run --release -p lvp-bench --bin fig7 [-- --scale small]`
//!
//! [`CloudModelService`]: lvp_models::cloud::CloudModelService

use lvp_bench::{prepare_split, write_results, ExperimentEnv, ResultRow};
use lvp_core::PerformancePredictor;
use lvp_corruptions::{standard_tabular_suite, ErrorGen, Mixture};
use lvp_datasets::DatasetKind;
use lvp_models::cloud::CloudModelService;
use lvp_models::{model_accuracy, BlackBoxModel};
use lvp_stats::mean_absolute_error;
use std::sync::Arc;

fn main() {
    let env = ExperimentEnv::from_args();
    let mut rows = Vec::new();

    for dataset in [DatasetKind::Income, DatasetKind::Heart] {
        let stream = format!("fig7/{}", dataset.name());
        let mut rng = env.rng(&stream);
        let split = prepare_split(dataset, env.scale, &mut rng);

        println!(
            "# uploading {} to the cloud service and training...",
            dataset.name()
        );
        let service = CloudModelService::new();
        let handle = service
            .train_and_deploy(&split.train, env.seed)
            .expect("cloud training succeeds");
        let remote: Arc<dyn BlackBoxModel> =
            Arc::new(service.remote_model(handle).expect("handle is valid"));

        let gens = standard_tabular_suite(split.test.schema());
        // The paper trains this predictor from "a few thousand corrupted
        // datasets"; give Figure 7 a larger meta-training budget than the
        // other figures (the cloud endpoint makes each copy one request).
        let mut predictor_config = env.scale.predictor_config();
        predictor_config.runs_per_generator *= 4;
        predictor_config.clean_copies *= 4;
        let predictor = PerformancePredictor::fit(
            Arc::clone(&remote),
            &split.test,
            &gens,
            &predictor_config,
            &mut rng,
        )
        .expect("predictor fit succeeds");

        let mixture = Mixture::from_boxes(standard_tabular_suite(split.serving.schema()));
        let mut predicted = Vec::new();
        let mut actual = Vec::new();
        println!("{:<8} {:>12} {:>12}", "batch", "true acc", "predicted");
        for b in 0..env.scale.serving_batches() {
            // Score the full serving pool per batch (with fresh random
            // corruption): the paper's Figure 7 scatter uses large serving
            // sets, and small batches would put a binomial-noise floor of
            // ~0.02 under the MAE.
            let corrupted = mixture.corrupt(&split.serving, &mut rng);
            let est = predictor.predict(&corrupted).expect("non-empty batch");
            let truth = model_accuracy(remote.as_ref(), &corrupted);
            println!("{:<8} {:>12.4} {:>12.4}", b, truth, est);
            rows.push(
                ResultRow::new("fig7", dataset.name(), "cloud-automl", format!("batch{b}"))
                    .with("true_accuracy", truth)
                    .with("predicted_accuracy", est),
            );
            predicted.push(est);
            actual.push(truth);
        }
        let mae = mean_absolute_error(&predicted, &actual);
        println!(
            "# {}: MAE {:.4} (paper: income 0.0038, heart 0.0101); {} endpoint requests, {} rows scored\n",
            dataset.name(),
            mae,
            service.requests_served(),
            service.rows_scored()
        );
        rows.push(
            ResultRow::new("fig7", dataset.name(), "cloud-automl", "mae")
                .with("mae", mae)
                .with("requests", service.requests_served() as f64),
        );
    }
    write_results("fig7", &rows);
}
