//! Quality ablations for the design choices called out in DESIGN.md §7:
//!
//! 1. featurization granularity — the paper's 21-point percentile grid vs
//!    deciles vs a fixed-bin histogram of the max-class probability,
//! 2. meta-model — random forest (paper) vs gradient-boosted regressor vs
//!    a trivial mean predictor,
//! 3. validator features — percentiles+KS (paper) vs percentiles only,
//! 4. training-copy budget — how MAE decays with runs-per-generator,
//! 5. conformal calibration — empirical coverage and mean width of the 90%
//!    interval vs the calibration hold-out stride.
//!
//! `cargo run --release -p lvp-bench --bin ablations [-- --scale small]`

use lvp_bench::{prepare_split, train_for, write_results, ExperimentEnv, ResultRow, Summary};
use lvp_core::{
    generate_training_examples, prediction_statistics, Metric, PerformancePredictor,
    PerformanceValidator, PredictorConfig, ValidatorConfig,
};
use lvp_corruptions::{standard_tabular_suite, ErrorGen, Mixture};
use lvp_dataframe::DataFrame;
use lvp_datasets::DatasetKind;
use lvp_linalg::DenseMatrix;
use lvp_models::gbdt::{GbdtConfig, GbdtRegressor};
use lvp_models::{model_accuracy, BlackBoxModel, ModelKind, Regressor};
use lvp_stats::{f1_score, mean_absolute_error, percentiles};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Decile featurization (11 points per class instead of 21).
fn decile_features(proba: &DenseMatrix) -> Vec<f64> {
    let grid: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
    let mut out = Vec::new();
    for c in 0..proba.cols() {
        out.extend(percentiles(&proba.column(c), &grid));
    }
    out
}

/// Histogram of the max-class probability in 10 fixed bins.
fn histogram_features(proba: &DenseMatrix) -> Vec<f64> {
    let mut bins = vec![0.0; 10];
    let n = proba.rows().max(1) as f64;
    for row in proba.row_iter() {
        let p_max = row.iter().copied().fold(0.0f64, f64::max);
        let bin = ((p_max * 10.0) as usize).min(9);
        bins[bin] += 1.0 / n;
    }
    bins
}

struct EvalData {
    model: Arc<dyn BlackBoxModel>,
    test: DataFrame,
    serving: DataFrame,
}

fn setup(env: &ExperimentEnv) -> EvalData {
    let mut rng = env.rng("ablations/setup");
    let split = prepare_split(DatasetKind::Income, env.scale, &mut rng);
    let model = train_for(ModelKind::Xgb, &split.train, env.scale, &mut rng);
    EvalData {
        model,
        test: split.test,
        serving: split.serving,
    }
}

/// MAE of a feature-variant predictor over mixture-corrupted batches.
fn featurization_mae(
    data: &EvalData,
    env: &ExperimentEnv,
    featurize: &dyn Fn(&DenseMatrix) -> Vec<f64>,
    rng: &mut StdRng,
) -> f64 {
    let gens = standard_tabular_suite(data.test.schema());
    let examples = generate_training_examples(
        data.model.as_ref(),
        &data.test,
        &gens,
        env.scale.runs_per_generator(),
        5,
        Metric::Accuracy,
        rng,
    )
    .expect("accuracy metric fits any class count");
    // Refit the forest on the alternative featurization by recomputing
    // features from scratch per corrupted copy is not possible post hoc, so
    // instead we regenerate matched (proba → features, score) pairs here.
    let mut x_rows = Vec::new();
    let mut y = Vec::new();
    for _ in 0..examples.len() {
        // examples already consumed the RNG; draw fresh corrupted copies
        let gen = &gens[rng.gen_range(0..gens.len())];
        let corrupted = gen.corrupt_with_model(&data.test, Some(data.model.as_ref()), rng);
        let proba = data.model.predict_proba(&corrupted);
        x_rows.push(featurize(&proba));
        y.push(
            Metric::Accuracy
                .score(&proba, corrupted.labels())
                .expect("accuracy metric fits any class count"),
        );
    }
    let x = DenseMatrix::from_rows(&x_rows).expect("uniform feature rows");
    let (forest, _) = lvp_models::forest::RandomForestRegressor::fit_cv(
        &x,
        &y,
        &[lvp_models::forest::ForestConfig::default()],
        3,
        rng,
    )
    .expect("forest fit");

    let mixture = Mixture::from_boxes(standard_tabular_suite(data.serving.schema()));
    let mut est = Vec::new();
    let mut truth = Vec::new();
    for _ in 0..env.scale.serving_batches() {
        let batch = data.serving.sample_n(env.scale.serving_batch_rows(), rng);
        let corrupted = mixture.corrupt(&batch, rng);
        let proba = data.model.predict_proba(&corrupted);
        let f = DenseMatrix::from_rows(&[featurize(&proba)]).expect("single row");
        est.push(forest.predict(&f)[0].clamp(0.0, 1.0));
        truth.push(model_accuracy(data.model.as_ref(), &corrupted));
    }
    mean_absolute_error(&est, &truth)
}

fn main() {
    let env = ExperimentEnv::from_args();
    let data = setup(&env);
    let mut rows = Vec::new();

    // --- Ablation 1: featurization granularity -------------------------
    println!("## ablation 1: featurization (income/xgb, mixture serving)");
    let mut rng = env.rng("ablations/features");
    for (name, f) in [
        (
            "vigintiles (paper)",
            &prediction_statistics as &dyn Fn(&DenseMatrix) -> Vec<f64>,
        ),
        ("deciles", &(|p: &DenseMatrix| decile_features(p)) as _),
        ("histogram", &(|p: &DenseMatrix| histogram_features(p)) as _),
    ] {
        let mae = featurization_mae(&data, &env, f, &mut rng);
        println!("{name:<22} MAE {mae:.4}");
        rows.push(ResultRow::new("ablation-features", "income", "xgb", name).with("mae", mae));
    }

    // --- Ablation 2: meta-model ----------------------------------------
    println!("\n## ablation 2: meta-model");
    let mut rng = env.rng("ablations/meta");
    let gens = standard_tabular_suite(data.test.schema());
    let examples = generate_training_examples(
        data.model.as_ref(),
        &data.test,
        &gens,
        env.scale.runs_per_generator(),
        5,
        Metric::Accuracy,
        &mut rng,
    )
    .expect("accuracy metric fits any class count");
    let x = DenseMatrix::from_rows(
        &examples
            .iter()
            .map(|e| e.features.clone())
            .collect::<Vec<_>>(),
    )
    .expect("uniform rows");
    let y: Vec<f64> = examples.iter().map(|e| e.score).collect();
    let mean_score = y.iter().sum::<f64>() / y.len() as f64;

    let forest = lvp_models::forest::RandomForestRegressor::fit(
        &x,
        &y,
        &lvp_models::forest::ForestConfig::default(),
        &mut rng,
    )
    .expect("forest fit");
    let gbr = GbdtRegressor::fit(
        &x,
        &y,
        &GbdtConfig {
            n_rounds: 60,
            learning_rate: 0.15,
            ..GbdtConfig::default()
        },
        &mut rng,
    )
    .expect("gbdt fit");

    let mixture = Mixture::from_boxes(standard_tabular_suite(data.serving.schema()));
    let mut truth = Vec::new();
    let mut forest_est = Vec::new();
    let mut gbr_est = Vec::new();
    let mut mean_est = Vec::new();
    for _ in 0..env.scale.serving_batches() {
        let batch = data
            .serving
            .sample_n(env.scale.serving_batch_rows(), &mut rng);
        let corrupted = mixture.corrupt(&batch, &mut rng);
        let proba = data.model.predict_proba(&corrupted);
        let f = DenseMatrix::from_rows(&[prediction_statistics(&proba)]).expect("row");
        forest_est.push(forest.predict(&f)[0].clamp(0.0, 1.0));
        gbr_est.push(gbr.predict(&f)[0].clamp(0.0, 1.0));
        mean_est.push(mean_score);
        truth.push(model_accuracy(data.model.as_ref(), &corrupted));
    }
    for (name, est) in [
        ("random forest (paper)", &forest_est),
        ("gbdt regressor", &gbr_est),
        ("constant mean", &mean_est),
    ] {
        let mae = mean_absolute_error(est, &truth);
        println!("{name:<22} MAE {mae:.4}");
        rows.push(ResultRow::new("ablation-meta", "income", "xgb", name).with("mae", mae));
    }

    // --- Ablation 3: validator features ---------------------------------
    println!("\n## ablation 3: validator features (t = 5%)");
    let mut rng = env.rng("ablations/validator");
    for (name, use_ks) in [
        ("percentiles + KS (paper)", true),
        ("percentiles only", false),
    ] {
        let cfg = ValidatorConfig {
            use_ks_features: use_ks,
            ..env.scale.validator_config(0.05)
        };
        let validator = PerformanceValidator::fit(
            Arc::clone(&data.model),
            &data.test,
            &standard_tabular_suite(data.test.schema()),
            &cfg,
            &mut rng,
        )
        .expect("validator fit");
        let mixture = Mixture::from_boxes(standard_tabular_suite(data.serving.schema()));
        let cutoff = 0.95 * validator.test_score();
        let mut truth = Vec::new();
        let mut pred = Vec::new();
        for i in 0..env.scale.serving_batches() {
            let batch = data
                .serving
                .sample_n(env.scale.serving_batch_rows(), &mut rng);
            let batch = if i % 3 == 0 {
                batch
            } else {
                mixture.corrupt(&batch, &mut rng)
            };
            truth.push(model_accuracy(data.model.as_ref(), &batch) < cutoff);
            pred.push(
                !validator
                    .validate(&batch)
                    .expect("non-empty")
                    .within_threshold,
            );
        }
        let f1 = f1_score(&pred, &truth);
        println!("{name:<26} F1 {f1:.3}");
        rows.push(ResultRow::new("ablation-validator", "income", "xgb", name).with("f1", f1));
    }

    // --- Ablation 4: training-copy budget --------------------------------
    println!("\n## ablation 4: corrupted copies per generator");
    let mut rng = env.rng("ablations/budget");
    for runs in [5usize, 15, 40, 100] {
        let cfg = PredictorConfig {
            runs_per_generator: runs,
            clean_copies: 5,
            forest_grid: vec![lvp_models::forest::ForestConfig::default()],
            ..PredictorConfig::default()
        };
        let predictor = PerformancePredictor::fit(
            Arc::clone(&data.model),
            &data.test,
            &standard_tabular_suite(data.test.schema()),
            &cfg,
            &mut rng,
        )
        .expect("predictor fit");
        let mixture = Mixture::from_boxes(standard_tabular_suite(data.serving.schema()));
        let mut abs_errors = Vec::new();
        for _ in 0..env.scale.serving_batches() {
            let batch = data
                .serving
                .sample_n(env.scale.serving_batch_rows(), &mut rng);
            let corrupted = mixture.corrupt(&batch, &mut rng);
            let est = predictor.predict(&corrupted).expect("non-empty");
            abs_errors.push((est - model_accuracy(data.model.as_ref(), &corrupted)).abs());
        }
        let s = Summary::of(&abs_errors);
        println!("runs={runs:<4} MAE {:.4} (median {:.4})", s.mean, s.median);
        rows.push(
            s.into_row(
                ResultRow::new("ablation-budget", "income", "xgb", format!("runs={runs}"))
                    .with("runs", runs as f64),
            ),
        );
    }

    // --- Ablation 5: conformal calibration budget ------------------------
    // Clean and mixture-corrupted serving batches (1:2, like ablation 3);
    // the interval targets 90% coverage of the true score at every stride.
    println!("\n## ablation 5: conformal calibration (90% target coverage)");
    let mut rng = env.rng("ablations/interval");
    for (name, stride) in [
        ("quantiles only", 0usize),
        ("stride 4 (hold out 1/4)", 4),
        ("stride 3 (hold out 1/3)", 3),
        ("stride 2 (equal split)", 2),
    ] {
        let cfg = PredictorConfig {
            runs_per_generator: env.scale.runs_per_generator(),
            clean_copies: 5,
            calibration_stride: stride,
            forest_grid: vec![lvp_models::forest::ForestConfig::default()],
            ..PredictorConfig::default()
        };
        let predictor = PerformancePredictor::fit(
            Arc::clone(&data.model),
            &data.test,
            &standard_tabular_suite(data.test.schema()),
            &cfg,
            &mut rng,
        )
        .expect("predictor fit");
        let n_cal = predictor.calibration_residuals().map_or(0, <[f64]>::len);
        let mixture = Mixture::from_boxes(standard_tabular_suite(data.serving.schema()));
        let batches = env.scale.serving_batches();
        let mut covered = 0usize;
        let mut widths = Vec::new();
        for i in 0..batches {
            let batch = data
                .serving
                .sample_n(env.scale.serving_batch_rows(), &mut rng);
            let batch = if i % 3 == 0 {
                batch
            } else {
                mixture.corrupt(&batch, &mut rng)
            };
            let interval = predictor.predict_interval(&batch).expect("non-empty");
            covered += usize::from(interval.contains(model_accuracy(data.model.as_ref(), &batch)));
            widths.push(interval.width());
        }
        let coverage = covered as f64 / batches as f64;
        let width = widths.iter().sum::<f64>() / widths.len() as f64;
        println!("{name:<26} n_cal {n_cal:>3}  coverage {coverage:.3}  mean width {width:.3}");
        rows.push(
            ResultRow::new("ablation-interval", "income", "xgb", name)
                .with("stride", stride as f64)
                .with("n_calibration", n_cal as f64)
                .with("coverage", coverage)
                .with("mean_width", width),
        );
    }

    write_results("ablations", &rows);
}
