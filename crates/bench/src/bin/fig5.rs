//! Figure 5: F1 scores for performance validation under mixtures of
//! shifts and errors, PPM vs BBSE / BBSEh / REL at t ∈ {3%, 5%, 10%}.
//!
//! Default protocol (§6.2.2): the validator trains on random mixtures of
//! the four *known* error types (missing values, outliers, swapped
//! columns, scaling) and is evaluated on mixtures of three *unknown* error
//! types (typos, smearing, flipped signs). Pass `--known` for the §6.2.1
//! variant where serving uses the same (known) mixture family.
//!
//! `cargo run --release -p lvp-bench --bin fig5 [-- --scale small] [--known]`

use lvp_bench::validation::{validation_f1, THRESHOLDS};
use lvp_bench::{prepare_split, train_for, write_results, ExperimentEnv, ResultRow};
use lvp_corruptions::{standard_tabular_suite, unknown_tabular_suite, Mixture};
use lvp_datasets::DatasetKind;
use lvp_models::ModelKind;

fn main() {
    let known_mode = std::env::args().any(|a| a == "--known");
    let env = ExperimentEnv::from_args();
    let mut rows = Vec::new();
    let serve_family = if known_mode { "known" } else { "unknown" };
    println!("# serving-error family: {serve_family}");
    println!(
        "{:<8} {:<6} {:>5} {:>8} {:>8} {:>8} {:>8}",
        "dataset", "model", "t", "PPM", "BBSE", "BBSEh", "REL"
    );

    for dataset in [DatasetKind::Income, DatasetKind::Heart, DatasetKind::Bank] {
        for model_kind in ModelKind::TABULAR {
            let stream = format!(
                "fig5/{}/{}/{}",
                dataset.name(),
                model_kind.name(),
                serve_family
            );
            let mut rng = env.rng(&stream);
            let split = prepare_split(dataset, env.scale, &mut rng);
            let model = train_for(model_kind, &split.train, env.scale, &mut rng);

            for threshold in THRESHOLDS {
                let train_gens = standard_tabular_suite(split.test.schema());
                let serve_mix = if known_mode {
                    Mixture::from_boxes(standard_tabular_suite(split.serving.schema()))
                } else {
                    Mixture::from_boxes(unknown_tabular_suite(split.serving.schema()))
                };
                let scores = validation_f1(
                    model.clone(),
                    &split.test,
                    &split.serving,
                    &train_gens,
                    &serve_mix,
                    threshold,
                    env.scale,
                    &mut rng,
                );
                println!(
                    "{:<8} {:<6} {:>5.2} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                    dataset.name(),
                    model_kind.name(),
                    threshold,
                    scores["PPM"],
                    scores["BBSE"],
                    scores["BBSEh"],
                    scores["REL"]
                );
                let mut row = ResultRow::new(
                    if known_mode { "fig5-known" } else { "fig5" },
                    dataset.name(),
                    model_kind.name(),
                    format!("t={threshold}"),
                )
                .with("threshold", threshold);
                for (method, f1) in &scores {
                    row = row.with(method, *f1);
                }
                rows.push(row);
            }
        }
    }
    write_results(if known_mode { "fig5_known" } else { "fig5" }, &rows);
}
