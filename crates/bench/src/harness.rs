//! Experiment environment: scales, splits and model training.

use lvp_core::{PredictorConfig, ValidatorConfig};
use lvp_dataframe::DataFrame;
use lvp_datasets::DatasetKind;
use lvp_models::forest::ForestConfig;
use lvp_models::{train_model, train_model_quick, BlackBoxModel, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Experiment size. Every figure binary accepts `--scale {smoke,small,paper}`.
///
/// * `smoke` — minutes on one core; verifies the full pipeline end to end.
/// * `small` — the default; qualitative reproduction of every figure.
/// * `paper` — the paper's dataset sizes and the full five-fold CV training
///   protocol. Expect hours of single-core compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sizes for CI-style smoke runs.
    Smoke,
    /// Default reproduction scale.
    Small,
    /// The paper's sizes and training protocol.
    Paper,
}

impl Scale {
    /// Parses `--scale <value>` from command-line arguments; defaults to
    /// [`Scale::Small`]. Also accepts a `--seed <u64>` override, returned
    /// as the second element.
    pub fn from_args() -> (Scale, u64) {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = Scale::Small;
        let mut seed = 42u64;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    scale = match args[i + 1].as_str() {
                        "smoke" => Scale::Smoke,
                        "small" => Scale::Small,
                        "paper" => Scale::Paper,
                        other => {
                            eprintln!("unknown scale '{other}', using small");
                            Scale::Small
                        }
                    };
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    seed = args[i + 1].parse().unwrap_or(42);
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        (scale, seed)
    }

    /// Number of records drawn for a dataset at this scale.
    pub fn dataset_size(self, kind: DatasetKind) -> usize {
        match self {
            Scale::Smoke => {
                if kind.is_image() {
                    400
                } else {
                    800
                }
            }
            Scale::Small => {
                if kind.is_image() {
                    900
                } else {
                    2_000
                }
            }
            Scale::Paper => kind.paper_size(),
        }
    }

    /// Corrupted copies per error generator when training a predictor or
    /// validator (the paper uses 100 per column/error combination).
    pub fn runs_per_generator(self) -> usize {
        match self {
            Scale::Smoke => 15,
            Scale::Small => 40,
            Scale::Paper => 100,
        }
    }

    /// Number of corrupted serving batches evaluated per condition.
    pub fn serving_batches(self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Small => 25,
            Scale::Paper => 100,
        }
    }

    /// Rows per serving batch.
    pub fn serving_batch_rows(self) -> usize {
        match self {
            Scale::Smoke => 200,
            Scale::Small => 300,
            Scale::Paper => 1_000,
        }
    }

    /// Whether to train models with the paper's full CV grid protocol.
    pub fn use_cv_training(self) -> bool {
        matches!(self, Scale::Paper)
    }

    /// Predictor configuration for this scale.
    pub fn predictor_config(self) -> PredictorConfig {
        PredictorConfig {
            runs_per_generator: self.runs_per_generator(),
            clean_copies: self.runs_per_generator() / 4 + 2,
            forest_grid: match self {
                Scale::Paper => lvp_models::forest::default_forest_grid(),
                _ => vec![ForestConfig {
                    n_trees: 40,
                    ..ForestConfig::default()
                }],
            },
            ..PredictorConfig::default()
        }
    }

    /// Validator configuration for this scale and threshold.
    pub fn validator_config(self, threshold: f64) -> ValidatorConfig {
        ValidatorConfig {
            threshold,
            runs_per_generator: self.runs_per_generator(),
            clean_copies: self.runs_per_generator() / 2 + 5,
            ..ValidatorConfig::default()
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }
}

/// A source/test/serving split of one dataset (§6.1's per-run protocol).
pub struct SplitSpec {
    /// Training data for the black box model.
    pub train: DataFrame,
    /// Held-out test data used to train the predictor/validator.
    pub test: DataFrame,
    /// The unseen serving pool that batches are drawn from.
    pub serving: DataFrame,
}

/// Generates a dataset at the given scale and splits it into
/// train/test/serving (50% serving; of the source half, 70% train).
pub fn prepare_split(kind: DatasetKind, scale: Scale, rng: &mut StdRng) -> SplitSpec {
    let df = lvp_datasets::generate(kind, scale.dataset_size(kind), rng);
    let df = df.balance_classes(rng);
    let (source, serving) = df.split_frac(0.5, rng);
    let (train, test) = source.split_frac(0.7, rng);
    SplitSpec {
        train,
        test,
        serving,
    }
}

/// Trains the black box model for this scale (full CV protocol at paper
/// scale, fixed defaults otherwise).
pub fn train_for(
    kind: ModelKind,
    train: &DataFrame,
    scale: Scale,
    rng: &mut StdRng,
) -> Arc<dyn BlackBoxModel> {
    let boxed = if scale.use_cv_training() {
        train_model(kind, train, rng)
    } else {
        train_model_quick(kind, train, rng)
    }
    .expect("model training on generated data succeeds");
    Arc::from(boxed)
}

/// Bundles the common per-experiment state.
pub struct ExperimentEnv {
    /// Selected scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentEnv {
    /// Reads scale and seed from the command line.
    pub fn from_args() -> Self {
        let (scale, seed) = Scale::from_args();
        println!("# scale: {}, seed: {}", scale.name(), seed);
        Self { scale, seed }
    }

    /// A deterministic RNG derived from the master seed and a label.
    pub fn rng(&self, stream: &str) -> StdRng {
        // Derive a stream-specific seed with FNV-style mixing.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for b in stream.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_sizes_are_ordered() {
        for kind in DatasetKind::ALL {
            assert!(Scale::Smoke.dataset_size(kind) <= Scale::Small.dataset_size(kind));
            assert!(Scale::Small.dataset_size(kind) <= Scale::Paper.dataset_size(kind));
        }
        assert_eq!(Scale::Paper.dataset_size(DatasetKind::Income), 48_842);
    }

    #[test]
    fn prepare_split_partitions() {
        let mut rng = StdRng::seed_from_u64(1);
        let split = prepare_split(DatasetKind::Income, Scale::Smoke, &mut rng);
        assert!(split.train.n_rows() > 0);
        assert!(split.test.n_rows() > 0);
        assert!(split.serving.n_rows() > 0);
    }

    #[test]
    fn env_rng_streams_differ() {
        let env = ExperimentEnv {
            scale: Scale::Smoke,
            seed: 7,
        };
        use rand::Rng;
        let a: u64 = env.rng("a").gen();
        let b: u64 = env.rng("b").gen();
        assert_ne!(a, b);
        let a2: u64 = env.rng("a").gen();
        assert_eq!(a, a2);
    }
}
