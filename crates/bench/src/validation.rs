//! Shared protocol for the performance-validation experiments (Figures 5
//! and 6): train a validator on one error distribution, serve batches from
//! another, and score PPM against the REL / BBSE / BBSEh baselines with F1.
//!
//! The positive class is "the accuracy dropped beyond the threshold" — the
//! event every method is trying to detect. Baselines predict it by raising
//! a shift alarm; PPM predicts it when its classifier says the score left
//! the acceptable band.

use crate::harness::Scale;
use lvp_core::{
    Baseline, BbseDetector, BbseHardDetector, PerformanceValidator, RelationalShiftDetector,
};
use lvp_corruptions::ErrorGen;
use lvp_dataframe::DataFrame;
use lvp_models::{model_accuracy, BlackBoxModel};
use lvp_stats::f1_score;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// F1 scores of the four methods on one condition.
pub type MethodScores = BTreeMap<&'static str, f64>;

/// Runs the §6.2 protocol for one (model, threshold) cell.
///
/// * `train_gens` — the error generators the validator trains on,
/// * `serve_gen` — the generator applied to serving batches (possibly a
///   mixture of error types the validator never saw),
/// * roughly a third of the served batches stay clean so both outcome
///   classes occur.
#[allow(clippy::too_many_arguments)]
pub fn validation_f1(
    model: Arc<dyn BlackBoxModel>,
    test: &DataFrame,
    serving_pool: &DataFrame,
    train_gens: &[Box<dyn ErrorGen>],
    serve_gen: &dyn ErrorGen,
    threshold: f64,
    scale: Scale,
    rng: &mut StdRng,
) -> MethodScores {
    let validator = PerformanceValidator::fit(
        Arc::clone(&model),
        test,
        train_gens,
        &scale.validator_config(threshold),
        rng,
    )
    .expect("validator fit succeeds");

    let rel = RelationalShiftDetector::new(test.clone());
    let bbse = BbseDetector::new(Arc::clone(&model), test);
    let bbseh = BbseHardDetector::new(Arc::clone(&model), test);

    let mut truth = Vec::new();
    let mut ppm_pred = Vec::new();
    let mut rel_pred = Vec::new();
    let mut bbse_pred = Vec::new();
    let mut bbseh_pred = Vec::new();

    let cutoff = (1.0 - threshold) * validator.test_score();
    for i in 0..scale.serving_batches() {
        let batch = serving_pool.sample_n(scale.serving_batch_rows(), rng);
        let batch = if i % 3 == 0 {
            batch // clean batch
        } else {
            serve_gen.corrupt_with_model(&batch, Some(model.as_ref()), rng)
        };
        let violated = model_accuracy(model.as_ref(), &batch) < cutoff;
        truth.push(violated);
        ppm_pred.push(
            !validator
                .validate(&batch)
                .expect("non-empty")
                .within_threshold,
        );
        rel_pred.push(rel.detects_shift(&batch));
        bbse_pred.push(bbse.detects_shift(&batch));
        bbseh_pred.push(bbseh.detects_shift(&batch));
        let _ = rng.gen::<u8>(); // decorrelate batch streams
    }

    let mut scores = MethodScores::new();
    scores.insert("PPM", f1_score(&ppm_pred, &truth));
    scores.insert("REL", f1_score(&rel_pred, &truth));
    scores.insert("BBSE", f1_score(&bbse_pred, &truth));
    scores.insert("BBSEh", f1_score(&bbseh_pred, &truth));
    scores
}

/// The thresholds evaluated by Figures 5 and 6.
pub const THRESHOLDS: [f64; 3] = [0.03, 0.05, 0.10];
