//! Shared harness for regenerating every figure of the paper's evaluation.
//!
//! Each `fig*` binary in `src/bin/` reproduces one figure (see DESIGN.md
//! for the experiment index). All binaries share:
//!
//! * [`Scale`] — smoke/small/paper experiment sizes selected via
//!   `--scale`; paper scale uses the full dataset sizes and CV-trained
//!   models, smoke/small shrink everything proportionally so the suite
//!   runs on a single CPU core,
//! * [`prepare_split`] / [`train_for`] — the §6.1 protocol: randomly
//!   partition a dataset into source and serving data, train the black box
//!   model on the source side,
//! * [`Summary`] — order statistics over absolute-error distributions
//!   (the quantities the paper's box plots and percentile bands report),
//! * [`write_results`] — machine-readable JSON output under `results/`.

pub mod harness;
pub mod summary;
pub mod validation;

pub use harness::{prepare_split, train_for, ExperimentEnv, Scale, SplitSpec};
pub use summary::{write_results, Summary};

use serde::Serialize;

/// One printed/persisted result row shared by the figure binaries.
#[derive(Debug, Clone, Serialize)]
pub struct ResultRow {
    /// Experiment identifier (e.g. "fig2").
    pub experiment: String,
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Error type / condition under test.
    pub condition: String,
    /// Named measurement values for this row.
    pub values: std::collections::BTreeMap<String, f64>,
}

impl ResultRow {
    /// Creates a row with no measurements yet.
    pub fn new(
        experiment: impl Into<String>,
        dataset: impl Into<String>,
        model: impl Into<String>,
        condition: impl Into<String>,
    ) -> Self {
        Self {
            experiment: experiment.into(),
            dataset: dataset.into(),
            model: model.into(),
            condition: condition.into(),
            values: std::collections::BTreeMap::new(),
        }
    }

    /// Adds a named measurement.
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.values.insert(key.to_string(), value);
        self
    }
}
