//! lvpd: a multi-tenant monitoring daemon for deployed
//! [`BatchMonitor`](lvp_core::BatchMonitor)s.
//!
//! The paper's validator scores the predictions a black box model makes on
//! unseen serving data; in production that check runs *next to* the model,
//! one monitor per deployment. This crate packages that shape as a daemon:
//!
//! - a **registry** of monitors keyed by `(tenant, model, version)`
//!   ([`MonitorKey`]), installed from the v4
//!   [`ServingArtifact`](lvp_core::ServingArtifact) bundles the training
//!   pipeline persists, and saved back to the same format — open streaming
//!   windows and all — so a daemon restart loses nothing;
//! - a **wire protocol** of line-delimited JSON verbs (`register`,
//!   `observe`, `finish`, `history`, `metrics`, `list`, `save`,
//!   `shutdown`) over a std-only threaded TCP listener ([`Server`]);
//! - **per-tenant admission control** ([`DaemonConfig`]): a bounded
//!   in-flight chunk budget per tenant with 429-style shedding
//!   (deterministic exponential retry-after) and a per-tenant circuit
//!   breaker reusing the [`lvp_models`] resilience vocabulary. Shed load
//!   *degrades* monitor state (degraded reports, poisoned windows) —
//!   it is never silently dropped from the record.
//!
//! The daemon core ([`Daemon`]) is transport-free — `handle_line` maps a
//! request line to a response line — so the full protocol is testable
//! in-process, and every timing decision runs on a virtual clock advanced
//! one tick per request, making breaker behavior and telemetry a pure
//! function of the request sequence.

pub mod daemon;
pub mod journal;
pub mod net;
pub mod protocol;

pub use daemon::{Daemon, DaemonConfig, DurabilityConfig, RecoveryReport};
pub use journal::{
    encode_record, scan_journal, FaultFile, FileSink, FsyncPolicy, Journal, JournalDefect,
    JournalFaultPlan, JournalOp, JournalRecord, JournalScan, JournalSink, MemorySink,
};
pub use net::{Client, Server};
pub use protocol::{DeploymentEntry, MonitorKey, RegistrySnapshot, Request, Response};
