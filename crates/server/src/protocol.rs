//! The lvpd wire protocol: line-delimited JSON requests and responses.
//!
//! Every request is one JSON object on one line; the daemon answers with
//! exactly one JSON object on one line. The request shape is a single flat
//! struct — the `verb` field selects the operation and the remaining
//! fields are optional, each verb requiring its own subset (see
//! [`Request`]). This keeps the protocol trivially evolvable under the
//! vendored serde: absent fields deserialize as `None`, so old clients
//! keep working when new optional fields appear.

use lvp_core::{BatchReport, ScoreInterval, ServingArtifact};
use lvp_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

/// Identity of one deployed monitor. The daemon's registry is a map keyed
/// by this triple; `BTreeMap` ordering (tenant, then model, then version)
/// makes every registry iteration — listings, snapshots, metric prefixes —
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MonitorKey {
    /// Owning tenant (admission control is per tenant).
    pub tenant: String,
    /// Monitored model name.
    pub model: String,
    /// Deployed model version.
    pub version: String,
}

impl MonitorKey {
    /// The telemetry name prefix of this deployment's monitor metrics,
    /// e.g. `tenant.acme.fraud.v1.` →
    /// `tenant.acme.fraud.v1.monitor.raw_score`.
    pub fn metric_prefix(&self) -> String {
        format!("tenant.{}.{}.{}.", self.tenant, self.model, self.version)
    }
}

impl std::fmt::Display for MonitorKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.tenant, self.model, self.version)
    }
}

/// One protocol request. `verb` selects the operation:
///
/// | verb       | required fields                          | optional |
/// |------------|------------------------------------------|----------|
/// | `register` | `tenant`,`model`,`version`,`artifact`    |          |
/// | `observe`  | key + exactly one of `outputs`/`chunk`/`estimate`/`interval` | |
/// | `finish`   | `tenant`,`model`,`version`               |          |
/// | `history`  | `tenant`,`model`,`version`               | `limit`,`offset` |
/// | `metrics`  |                                          |          |
/// | `list`     |                                          |          |
/// | `save`     | `path`                                   |          |
/// | `shutdown` |                                          |          |
///
/// `outputs` submits a full serving batch of model output rows (scored
/// immediately), `chunk` folds output rows into the deployment's open
/// streaming window (closed by `finish`), `estimate` reports an
/// externally computed score, and `interval` reports an externally
/// computed [`ScoreInterval`] (validated on entry: bounds must be all
/// finite with `lo ≤ point ≤ hi`, or all NaN for a degraded batch).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Operation selector (see the table above).
    pub verb: String,
    /// Target tenant.
    pub tenant: Option<String>,
    /// Target model name.
    pub model: Option<String>,
    /// Target model version.
    pub version: Option<String>,
    /// `register`: the deployment bundle to install.
    pub artifact: Option<ServingArtifact>,
    /// `observe`: a full batch of model output rows (n × classes).
    pub outputs: Option<Vec<Vec<f64>>>,
    /// `observe`: one chunk of model output rows for the streaming window.
    pub chunk: Option<Vec<Vec<f64>>>,
    /// `observe`: an externally computed score estimate.
    pub estimate: Option<f64>,
    /// `observe`: an externally computed score interval (validated by the
    /// daemon before it is recorded).
    pub interval: Option<ScoreInterval>,
    /// `history`: maximum reports to return (default: everything retained).
    pub limit: Option<usize>,
    /// `history`: reports to skip from the start of the retained history.
    pub offset: Option<usize>,
    /// `save`: filesystem path for the registry snapshot.
    pub path: Option<String>,
}

impl Request {
    /// A request with only the verb set.
    pub fn new(verb: impl Into<String>) -> Self {
        Self {
            verb: verb.into(),
            tenant: None,
            model: None,
            version: None,
            artifact: None,
            outputs: None,
            chunk: None,
            estimate: None,
            interval: None,
            limit: None,
            offset: None,
            path: None,
        }
    }

    /// A request targeting one deployment.
    pub fn targeted(verb: impl Into<String>, key: &MonitorKey) -> Self {
        let mut req = Self::new(verb);
        req.tenant = Some(key.tenant.clone());
        req.model = Some(key.model.clone());
        req.version = Some(key.version.clone());
        req
    }
}

/// One protocol response. `status` is `"ok"`, `"shed"` (admission control
/// rejected the request; retry after `retry_after_nanos` on the daemon's
/// virtual clock) or `"error"`; the payload fields are filled per verb.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// `"ok"`, `"shed"` or `"error"`.
    pub status: String,
    /// Human-readable detail (always set for `shed`/`error`).
    pub message: Option<String>,
    /// The batch report produced by `observe`/`finish` (also set on shed
    /// responses that degraded a batch, so the loss is visible inline).
    pub report: Option<BatchReport>,
    /// `history`: the requested report slice, oldest first.
    pub history: Option<Vec<BatchReport>>,
    /// Total batches the target monitor has observed (absolute count).
    pub batches_seen: Option<usize>,
    /// Chunks currently in flight (unfinished windows) for the tenant.
    pub pending_chunks: Option<u64>,
    /// `shed`: virtual nanoseconds the client should back off before
    /// retrying.
    pub retry_after_nanos: Option<u64>,
    /// `metrics`: the deterministic telemetry view.
    pub metrics: Option<TelemetrySnapshot>,
    /// `list`: every registered deployment, in key order.
    pub deployments: Option<Vec<MonitorKey>>,
}

impl Response {
    fn empty(status: &str) -> Self {
        Self {
            status: status.to_string(),
            message: None,
            report: None,
            history: None,
            batches_seen: None,
            pending_chunks: None,
            retry_after_nanos: None,
            metrics: None,
            deployments: None,
        }
    }

    /// A bare success response.
    pub fn ok() -> Self {
        Self::empty("ok")
    }

    /// An error response with a message.
    pub fn error(message: impl Into<String>) -> Self {
        let mut r = Self::empty("error");
        r.message = Some(message.into());
        r
    }

    /// A shed (admission-rejected) response with a retry-after hint.
    pub fn shed(retry_after_nanos: u64, message: impl Into<String>) -> Self {
        let mut r = Self::empty("shed");
        r.message = Some(message.into());
        r.retry_after_nanos = Some(retry_after_nanos);
        r
    }

    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// Whether admission control shed the request.
    pub fn is_shed(&self) -> bool {
        self.status == "shed"
    }
}

/// On-disk snapshot of the whole registry: one [`ServingArtifact`] bundle
/// per deployment, in key order. Written by the `save` verb and loaded at
/// daemon startup; the bundled v4 artifacts round-trip monitor state —
/// open streaming windows included — bit-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Artifact format version (shared with the core artifacts).
    pub version: u32,
    /// The write-ahead-journal compaction epoch this snapshot covers:
    /// replay applies only journal records at exactly this epoch,
    /// skipping stale ones left by a crash between snapshot and journal
    /// truncation. `None` on snapshots from journal-less daemons and on
    /// plain exports, which restore standalone (absent in pre-journal
    /// snapshot files, which deserialize as `None`).
    pub journal_epoch: Option<u64>,
    /// Every deployment, sorted by key.
    pub deployments: Vec<DeploymentEntry>,
}

/// One deployment inside a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentEntry {
    /// The deployment's registry key.
    pub key: MonitorKey,
    /// The deployment's bundled predictor + monitor state.
    pub artifact: ServingArtifact,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_and_tolerate_missing_fields() {
        let key = MonitorKey {
            tenant: "acme".into(),
            model: "fraud".into(),
            version: "v1".into(),
        };
        let mut req = Request::targeted("observe", &key);
        req.estimate = Some(0.84);
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);

        // A minimal hand-written line (absent optional fields) parses too.
        let back: Request = serde_json::from_str(r#"{"verb":"metrics"}"#).unwrap();
        assert_eq!(back.verb, "metrics");
        assert!(back.tenant.is_none() && back.artifact.is_none());
    }

    #[test]
    fn responses_round_trip() {
        let mut r = Response::shed(1_500, "queue full");
        r.pending_chunks = Some(4);
        let json = serde_json::to_string(&r).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        assert_eq!(back.retry_after_nanos, Some(1_500));
        assert!(back.is_shed() && !back.is_ok());
    }

    #[test]
    fn monitor_keys_order_by_tenant_model_version() {
        let mk = |t: &str, m: &str, v: &str| MonitorKey {
            tenant: t.into(),
            model: m.into(),
            version: v.into(),
        };
        let mut keys = [
            mk("b", "a", "v1"),
            mk("a", "z", "v1"),
            mk("a", "a", "v2"),
            mk("a", "a", "v1"),
        ];
        keys.sort();
        assert_eq!(
            keys.iter().map(|k| k.to_string()).collect::<Vec<_>>(),
            vec!["a/a/v1", "a/a/v2", "a/z/v1", "b/a/v1"]
        );
        assert_eq!(keys[0].metric_prefix(), "tenant.a.a.v1.");
    }
}
