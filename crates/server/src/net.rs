//! A std-only threaded TCP front end for the [`Daemon`], plus a small
//! blocking client.
//!
//! Framing is one JSON object per `\n`-terminated line in each direction
//! (see [`crate::protocol`]). The listener runs one thread per connection;
//! the daemon serializes state mutations internally, so handler threads
//! need no coordination beyond calling [`Daemon::handle_line`].

use crate::daemon::Daemon;
use crate::protocol::{Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// A running lvpd listener. Dropping it does not stop the daemon; call
/// [`Server::join`] for an orderly shutdown.
pub struct Server {
    daemon: Arc<Daemon>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `daemon`.
    pub fn spawn(daemon: Arc<Daemon>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let accept_daemon = Arc::clone(&daemon);
        let acceptor = thread::spawn(move || {
            let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
            for stream in listener.incoming() {
                if accept_daemon.is_shutdown() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let daemon = Arc::clone(&accept_daemon);
                let handle = thread::spawn(move || serve_connection(&daemon, stream, local_addr));
                workers.lock().expect("worker list lock").push(handle);
            }
            for handle in workers.into_inner().expect("worker list lock") {
                let _ = handle.join();
            }
        });
        Ok(Self {
            daemon,
            local_addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until the daemon shuts down (a client sends the `shutdown`
    /// verb, or [`Server::shutdown`] is called from another thread), then
    /// joins every connection thread. Does not itself initiate shutdown.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Initiates shutdown, wakes the acceptor, and joins every connection
    /// thread.
    pub fn shutdown(self) {
        self.daemon.request_shutdown();
        // The acceptor only observes the flag after an accept returns;
        // poke it with a throwaway connection so it wakes immediately.
        let _ = TcpStream::connect(self.local_addr);
        self.join();
    }
}

/// Serves one connection: one response line per request line, until the
/// peer closes or the daemon shuts down. `local_addr` lets the handler
/// poke the acceptor awake after a `shutdown` verb.
fn serve_connection(daemon: &Daemon, stream: TcpStream, local_addr: SocketAddr) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = daemon.handle_line(&line);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if daemon.is_shutdown() {
            // Wake the acceptor (blocked in accept) so it observes the
            // flag and the whole server winds down.
            let _ = TcpStream::connect(local_addr);
            break;
        }
    }
}

/// A minimal blocking lvpd client: one [`call`](Client::call) is one
/// request line out, one response line back.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let line = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let read = self.reader.read_line(&mut response)?;
        if read == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        serde_json::from_str(&response)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
