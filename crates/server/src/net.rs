//! A std-only threaded TCP front end for the [`Daemon`], plus a small
//! blocking client.
//!
//! Framing is one JSON object per `\n`-terminated line in each direction
//! (see [`crate::protocol`]). The listener runs one thread per connection;
//! the daemon serializes state mutations internally, so handler threads
//! need no coordination beyond calling [`Daemon::handle_line`].

use crate::daemon::Daemon;
use crate::protocol::{Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// A running lvpd listener. Dropping it does not stop the daemon; call
/// [`Server::join`] for an orderly shutdown.
pub struct Server {
    daemon: Arc<Daemon>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `daemon`.
    pub fn spawn(daemon: Arc<Daemon>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let accept_daemon = Arc::clone(&daemon);
        let acceptor = thread::spawn(move || {
            // Only this thread touches the worker list, so it needs no
            // lock (the old `Mutex` here could also poison and panic the
            // acceptor if a push ever unwound mid-lock).
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if accept_daemon.is_shutdown() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Reap finished connection handlers so the list stays
                // proportional to *live* connections instead of growing
                // by one handle per connection ever accepted. Joining a
                // finished thread returns immediately.
                let mut i = 0;
                while i < workers.len() {
                    if workers[i].is_finished() {
                        let _ = workers.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                let daemon = Arc::clone(&accept_daemon);
                workers.push(thread::spawn(move || {
                    serve_connection(&daemon, stream, local_addr)
                }));
            }
            for handle in workers {
                let _ = handle.join();
            }
        });
        Ok(Self {
            daemon,
            local_addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until the daemon shuts down (a client sends the `shutdown`
    /// verb, or [`Server::shutdown`] is called from another thread), then
    /// joins every connection thread. Does not itself initiate shutdown.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Initiates shutdown, wakes the acceptor, and joins every connection
    /// thread.
    pub fn shutdown(self) {
        self.daemon.request_shutdown();
        // The acceptor only observes the flag after an accept returns;
        // poke it with a throwaway connection so it wakes immediately.
        let _ = TcpStream::connect(self.local_addr);
        self.join();
    }
}

/// Outcome of one bounded line read from a connection.
enum LineRead {
    /// A complete line within the size cap (without its `\n`).
    Line(Vec<u8>),
    /// The line exceeded the cap; its bytes were drained, not buffered.
    Oversized,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line, buffering at most `cap` bytes. Past the
/// cap the rest of the line is *drained* chunk by chunk (never held in
/// memory), so a malicious or misconfigured client sending a gigabyte
/// line costs the daemon one fixed-size buffer, not a gigabyte — and the
/// connection stays usable for the next request.
fn read_bounded_line(reader: &mut impl BufRead, cap: usize) -> io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF. An unterminated oversized tail is still a rejection;
            // an unterminated in-cap tail is served as a final line.
            return Ok(if oversized {
                LineRead::Oversized
            } else if line.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(line)
            });
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            if !oversized {
                line.extend_from_slice(&buf[..pos]);
            }
            reader.consume(pos + 1);
            return Ok(if oversized || line.len() > cap {
                LineRead::Oversized
            } else {
                LineRead::Line(line)
            });
        }
        let chunk = buf.len();
        if !oversized {
            line.extend_from_slice(buf);
            if line.len() > cap {
                // Switch to drain mode: release what we buffered.
                oversized = true;
                line = Vec::new();
            }
        }
        reader.consume(chunk);
    }
}

/// Serves one connection: one response line per request line, until the
/// peer closes or the daemon shuts down. `local_addr` lets the handler
/// poke the acceptor awake after a `shutdown` verb. Request lines longer
/// than [`DaemonConfig::max_request_bytes`](crate::daemon::DaemonConfig)
/// are rejected with a typed error response instead of buffered.
fn serve_connection(daemon: &Daemon, stream: TcpStream, local_addr: SocketAddr) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let cap = daemon.config().max_request_bytes;
    let mut writer = io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    loop {
        let response = match read_bounded_line(&mut reader, cap) {
            Err(_) | Ok(LineRead::Eof) => break,
            Ok(LineRead::Oversized) => daemon.reject_oversized(),
            Ok(LineRead::Line(bytes)) => {
                let line = String::from_utf8_lossy(&bytes);
                if line.trim().is_empty() {
                    continue;
                }
                daemon.handle_line(&line)
            }
        };
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if daemon.is_shutdown() {
            // Wake the acceptor (blocked in accept) so it observes the
            // flag and the whole server winds down.
            let _ = TcpStream::connect(local_addr);
            break;
        }
    }
}

/// A minimal blocking lvpd client: one [`call`](Client::call) is one
/// request line out, one response line back.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let line = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let read = self.reader.read_line(&mut response)?;
        if read == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        serde_json::from_str(&response)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    // A tiny buffer capacity forces the reader through its chunked drain
    // path even for short test inputs.
    fn chunked(bytes: &[u8]) -> BufReader<Cursor<Vec<u8>>> {
        BufReader::with_capacity(4, Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn bounded_line_reader_caps_memory_not_the_connection() {
        // In-cap lines come back intact, across chunk boundaries.
        let mut r = chunked(b"hello world\nsecond\n");
        let LineRead::Line(first) = read_bounded_line(&mut r, 16).unwrap() else {
            panic!("expected a line");
        };
        assert_eq!(first, b"hello world");

        // An oversized line is drained and rejected — and the *next* line
        // on the same reader still parses, so one abusive request does
        // not wedge the connection.
        let mut r = chunked(b"0123456789abcdef-too-long\nok\n");
        assert!(matches!(
            read_bounded_line(&mut r, 8).unwrap(),
            LineRead::Oversized
        ));
        let LineRead::Line(next) = read_bounded_line(&mut r, 8).unwrap() else {
            panic!("expected the follow-up line");
        };
        assert_eq!(next, b"ok");

        // A line of exactly `cap` bytes is allowed; cap + 1 is not.
        let mut r = chunked(b"12345678\n123456789\n");
        assert!(matches!(
            read_bounded_line(&mut r, 8).unwrap(),
            LineRead::Line(l) if l == b"12345678"
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 8).unwrap(),
            LineRead::Oversized
        ));

        // Unterminated tails: served when in cap, rejected when over.
        let mut r = chunked(b"tail");
        assert!(matches!(
            read_bounded_line(&mut r, 8).unwrap(),
            LineRead::Line(l) if l == b"tail"
        ));
        let mut r = chunked(b"unterminated-overflow");
        assert!(matches!(
            read_bounded_line(&mut r, 8).unwrap(),
            LineRead::Oversized
        ));
        let mut r = chunked(b"");
        assert!(matches!(
            read_bounded_line(&mut r, 8).unwrap(),
            LineRead::Eof
        ));
    }
}
