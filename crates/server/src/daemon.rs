//! The daemon state machine: a registry of deployed monitors plus
//! per-tenant admission control, independent of any transport.
//!
//! [`Daemon::handle_line`] maps one request line to one response line, so
//! the whole protocol is testable without a socket; the TCP listener in
//! [`crate::net`] is a thin framing layer over it.
//!
//! ## Admission control
//!
//! Streaming chunks are the unbounded input: a tenant can open windows on
//! every deployment and feed them forever without calling `finish`. Each
//! tenant therefore gets a bounded in-flight budget — the total number of
//! chunks sitting in the tenant's unfinished windows. A chunk that would
//! exceed the budget is *shed*, 429-style: the response carries a
//! deterministic retry-after hint (exponential in the tenant's consecutive
//! overflows, jittered like the [`lvp_models::ResilientModel`] backoff),
//! and the target window is poisoned so its eventual `finish` reports a
//! degraded batch — shed load degrades monitor state, it never silently
//! disappears from it. Sustained overflow trips a per-tenant circuit
//! breaker (same [`BreakerConfig`]/[`CircuitState`] vocabulary as the
//! resilience layer): while open, every observe from the tenant is shed
//! immediately with the remaining cooldown as the retry-after, and each
//! shed full batch is recorded as a degraded report. Cooldowns run on a
//! [`VirtualClock`] advanced a fixed tick per request, so breaker behavior
//! is a pure function of the request sequence.

use crate::protocol::{DeploymentEntry, MonitorKey, RegistrySnapshot, Request, Response};
use lvp_core::{
    feature_dimensionality, load_json, save_json, BatchMonitor, ServingArtifact, ARTIFACT_VERSION,
};
use lvp_linalg::DenseMatrix;
use lvp_models::{mix64, BlackBoxModel, BreakerConfig, CircuitState, ModelError, VirtualClock};
use lvp_telemetry::{Counter, Registry};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Stand-in for the black box model of a registered deployment. The model
/// itself serves in the tenant's own infrastructure; the daemon only ever
/// receives its *outputs* (or score estimates), so the monitor's model
/// handle exists purely to satisfy the predictor's class-count contract.
struct DetachedModel {
    n_classes: usize,
    label: String,
}

impl BlackBoxModel for DetachedModel {
    fn predict_proba(&self, _data: &lvp_dataframe::DataFrame) -> DenseMatrix {
        // Unreachable through the daemon: every observe path feeds
        // pre-computed outputs or estimates. Fail loudly if a future code
        // path tries to score raw frames against a detached handle.
        panic!(
            "detached model '{}' cannot predict; submit model outputs instead",
            self.label
        )
    }

    fn try_predict_proba(
        &self,
        _data: &lvp_dataframe::DataFrame,
    ) -> Result<DenseMatrix, ModelError> {
        Err(ModelError::invalid_input(format!(
            "detached model '{}' cannot predict; submit model outputs instead",
            self.label
        )))
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &str {
        "detached"
    }
}

/// Admission-control and retention knobs of a [`Daemon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Per-tenant budget of in-flight chunks (chunks folded into windows
    /// not yet closed by `finish`); the next chunk beyond it is shed.
    pub queue_capacity: u64,
    /// Per-tenant circuit breaker tripped by consecutive overflows.
    pub breaker: BreakerConfig,
    /// Virtual nanoseconds the clock advances per handled request; breaker
    /// cooldowns are measured in these ticks, so behavior is a pure
    /// function of the request sequence.
    pub clock_tick_nanos: u64,
    /// Base of the exponential retry-after hint on overflow sheds.
    pub base_retry_nanos: u64,
    /// Cap on the un-jittered exponential retry-after.
    pub max_retry_nanos: u64,
    /// Seed of the deterministic retry-after jitter.
    pub jitter_seed: u64,
    /// Report-history bound applied to every registered monitor (`None`
    /// retains everything; daemons should bound it).
    pub history_limit: Option<usize>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            breaker: BreakerConfig::default(),
            clock_tick_nanos: 1_000_000, // 1 virtual ms per request
            base_retry_nanos: 10_000_000,
            max_retry_nanos: 1_000_000_000,
            jitter_seed: 0x1_5EED_D0E5,
            history_limit: Some(256),
        }
    }
}

/// Per-tenant admission gate: circuit breaker plus overflow bookkeeping.
/// The in-flight chunk count is *not* stored here — it is derived from the
/// open windows of the tenant's monitors, so it survives a registry
/// save/restore cycle with no extra state.
#[derive(Debug, Clone, Default)]
struct TenantGate {
    state: GateState,
    consecutive_overflows: u32,
    half_open_successes: u32,
    opened_at_nanos: u64,
    sheds: u64,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum GateState {
    #[default]
    Closed,
    Open,
    HalfOpen,
}

impl GateState {
    fn circuit(self) -> CircuitState {
        match self {
            GateState::Closed => CircuitState::Closed,
            GateState::Open => CircuitState::Open,
            GateState::HalfOpen => CircuitState::HalfOpen,
        }
    }

    /// Numeric encoding for the per-tenant breaker gauge.
    fn gauge_value(self) -> f64 {
        match self {
            GateState::Closed => 0.0,
            GateState::Open => 1.0,
            GateState::HalfOpen => 2.0,
        }
    }
}

struct Deployment {
    monitor: BatchMonitor,
}

#[derive(Default)]
struct Inner {
    deployments: BTreeMap<MonitorKey, Deployment>,
    tenants: BTreeMap<String, TenantGate>,
}

/// Daemon-level request counters (all deterministic in the request
/// sequence).
struct ServerMetrics {
    /// `server.requests` — lines handled.
    requests: Counter,
    /// `server.registrations` — deployments (re)installed.
    registrations: Counter,
    /// `server.shed_requests` — observes rejected by admission control.
    shed: Counter,
    /// `server.error_responses` — lines answered with an error status.
    errors: Counter,
}

/// The lvpd daemon: a registry of deployed monitors keyed by
/// `(tenant, model, version)` with per-tenant admission control, exposed
/// as a pure line-in/line-out request handler.
pub struct Daemon {
    inner: Mutex<Inner>,
    registry: Registry,
    metrics: ServerMetrics,
    clock: VirtualClock,
    config: DaemonConfig,
    shutdown: AtomicBool,
}

/// FNV-1a over a tenant name, for per-tenant jitter derivation.
fn tenant_hash(tenant: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl Daemon {
    /// An empty daemon.
    pub fn new(config: DaemonConfig) -> Self {
        let registry = Registry::new();
        let metrics = ServerMetrics {
            requests: registry.counter("server.requests"),
            registrations: registry.counter("server.registrations"),
            shed: registry.counter("server.shed_requests"),
            errors: registry.counter("server.error_responses"),
        };
        Self {
            inner: Mutex::new(Inner::default()),
            registry,
            metrics,
            clock: VirtualClock::new(),
            config,
            shutdown: AtomicBool::new(false),
        }
    }

    /// A daemon whose registry is restored from a [`RegistrySnapshot`]
    /// file previously written by the `save` verb. Monitor state — open
    /// streaming windows included — carries over bit-identically.
    pub fn with_state_file(config: DaemonConfig, path: impl AsRef<Path>) -> Result<Self, String> {
        let snapshot: RegistrySnapshot = load_json(path.as_ref()).map_err(|e| e.to_string())?;
        if snapshot.version == 0 || snapshot.version > ARTIFACT_VERSION {
            return Err(format!(
                "unsupported registry snapshot version {} (supported: 1..={ARTIFACT_VERSION})",
                snapshot.version
            ));
        }
        let daemon = Self::new(config);
        {
            let mut inner = daemon.lock_inner();
            for entry in snapshot.deployments {
                daemon.install(&mut inner, entry.key, entry.artifact)?;
            }
        }
        Ok(daemon)
    }

    /// The daemon's metrics registry (scraped by the `metrics` verb).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The virtual clock admission cooldowns run on.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The tenant's current admission circuit state (`Closed` for tenants
    /// the daemon has never seen).
    pub fn tenant_circuit(&self, tenant: &str) -> CircuitState {
        self.lock_inner()
            .tenants
            .get(tenant)
            .map(|gate| gate.state.circuit())
            .unwrap_or(CircuitState::Closed)
    }

    /// Whether a `shutdown` request has been received.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (also reachable through the `shutdown` verb).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// State access, recovering a poisoned lock: every mutation is a
    /// single monitor/gate method call, so a panicking handler thread
    /// leaves valid state behind and must not brick the daemon (mirroring
    /// the telemetry registry's poisoning policy).
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Handles one request line, returning the response line (without the
    /// trailing newline). Never panics on malformed input — parse and
    /// validation failures come back as `status: "error"` responses.
    pub fn handle_line(&self, line: &str) -> String {
        let response = match serde_json::from_str::<Request>(line) {
            Ok(request) => self.handle_request(request),
            Err(e) => {
                self.clock.advance(self.config.clock_tick_nanos);
                self.metrics.requests.inc();
                self.metrics.errors.inc();
                Response::error(format!("malformed request: {e}"))
            }
        };
        serde_json::to_string(&response)
            .unwrap_or_else(|e| format!("{{\"status\":\"error\",\"message\":\"encode: {e}\"}}"))
    }

    /// Typed entry point behind [`Self::handle_line`] (useful for
    /// embedding the daemon without a socket). Advances the virtual clock
    /// one tick, so admission timing is a pure function of the request
    /// sequence.
    pub fn handle_request(&self, request: Request) -> Response {
        self.clock.advance(self.config.clock_tick_nanos);
        self.metrics.requests.inc();
        let response = self.dispatch(request);
        if response.status == "error" {
            self.metrics.errors.inc();
        }
        response
    }

    fn dispatch(&self, request: Request) -> Response {
        match request.verb.as_str() {
            "register" => self.register(request),
            "observe" => self.observe(request),
            "finish" => self.finish(request),
            "history" => self.history(request),
            "metrics" => self.metrics(),
            "list" => self.list(),
            "save" => self.save(request),
            "shutdown" => {
                self.request_shutdown();
                let mut r = Response::ok();
                r.message = Some("shutting down".to_string());
                r
            }
            other => Response::error(format!("unknown verb '{other}'")),
        }
    }

    fn require_key(request: &Request) -> Result<MonitorKey, Box<Response>> {
        match (&request.tenant, &request.model, &request.version) {
            (Some(tenant), Some(model), Some(version)) => Ok(MonitorKey {
                tenant: tenant.clone(),
                model: model.clone(),
                version: version.clone(),
            }),
            _ => Err(Box::new(Response::error(
                "tenant, model and version are all required for this verb",
            ))),
        }
    }

    /// Installs (or replaces) a deployment, attaching per-tenant telemetry
    /// and the configured history bound.
    fn install(
        &self,
        inner: &mut Inner,
        key: MonitorKey,
        artifact: ServingArtifact,
    ) -> Result<usize, String> {
        let n_classes = artifact
            .predictor
            .n_classes
            .unwrap_or(artifact.predictor.n_feature_dims / feature_dimensionality(1));
        if n_classes == 0 {
            return Err(format!("register {key}: artifact declares zero classes"));
        }
        let model: Arc<dyn BlackBoxModel> = Arc::new(DetachedModel {
            n_classes,
            label: key.to_string(),
        });
        let mut monitor = artifact
            .into_monitor(model)
            .map_err(|e| format!("register {key}: {e}"))?;
        monitor.set_history_limit(self.config.history_limit);
        monitor.attach_telemetry_prefixed(&self.registry, &key.metric_prefix());
        let batches_seen = monitor.batches_seen();
        inner.tenants.entry(key.tenant.clone()).or_default();
        inner.deployments.insert(key, Deployment { monitor });
        self.metrics.registrations.inc();
        Ok(batches_seen)
    }

    fn register(&self, request: Request) -> Response {
        let key = match Self::require_key(&request) {
            Ok(key) => key,
            Err(resp) => return *resp,
        };
        let Some(artifact) = request.artifact else {
            return Response::error("register requires an artifact");
        };
        let mut inner = self.lock_inner();
        match self.install(&mut inner, key.clone(), artifact) {
            Ok(batches_seen) => {
                let mut r = Response::ok();
                r.message = Some(format!("registered {key}"));
                r.batches_seen = Some(batches_seen);
                r
            }
            Err(message) => Response::error(message),
        }
    }

    /// Total in-flight chunks of a tenant: the chunk counts of every open
    /// window across the tenant's deployments. Derived from monitor state
    /// so it is exact after any save/restore cycle.
    fn tenant_pending(inner: &Inner, tenant: &str) -> u64 {
        inner
            .deployments
            .iter()
            .filter(|(key, _)| key.tenant == tenant)
            .filter_map(|(_, dep)| dep.monitor.window())
            .map(|window| window.chunks())
            .sum()
    }

    /// Deterministic retry-after for the `n`-th consecutive overflow:
    /// exponential in `n`, capped, with jitter in `[0.5, 1.5)` derived
    /// from `(jitter_seed, tenant, total sheds)` exactly like the
    /// resilience layer's backoff jitter.
    fn retry_after(&self, tenant: &str, consecutive: u32, sheds: u64) -> u64 {
        let exp = consecutive.saturating_sub(1).min(16);
        let raw = self
            .config
            .base_retry_nanos
            .saturating_mul(1u64 << exp)
            .min(self.config.max_retry_nanos);
        let mixed = mix64(
            self.config
                .jitter_seed
                .wrapping_add(tenant_hash(tenant))
                .wrapping_add(sheds),
        );
        let frac = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        ((raw as f64) * (0.5 + frac)) as u64
    }

    fn publish_gate(&self, tenant: &str, gate: &TenantGate, pending: u64) {
        self.registry
            .gauge(&format!("tenant.{tenant}.server.breaker_state"))
            .set(gate.state.gauge_value());
        self.registry
            .gauge(&format!("tenant.{tenant}.server.queue_depth"))
            .set(pending as f64);
    }

    fn note_shed(&self, tenant: &str) {
        self.metrics.shed.inc();
        self.registry
            .counter(&format!("tenant.{tenant}.server.shed_requests"))
            .inc();
    }

    fn observe(&self, request: Request) -> Response {
        let key = match Self::require_key(&request) {
            Ok(key) => key,
            Err(resp) => return *resp,
        };
        let now = self.clock.now_nanos();
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        if !inner.deployments.contains_key(&key) {
            return Response::error(format!("unknown deployment {key}"));
        }
        let mode_count = usize::from(request.outputs.is_some())
            + usize::from(request.chunk.is_some())
            + usize::from(request.estimate.is_some())
            + usize::from(request.interval.is_some());
        if mode_count != 1 {
            return Response::error(
                "observe requires exactly one of outputs, chunk, estimate or interval",
            );
        }

        // Breaker check first: an open breaker sheds every observe form.
        let gate = inner.tenants.entry(key.tenant.clone()).or_default();
        if gate.state == GateState::Open {
            let elapsed = now.saturating_sub(gate.opened_at_nanos);
            if elapsed < self.config.breaker.cooldown_nanos {
                let retry = self.config.breaker.cooldown_nanos - elapsed;
                gate.sheds += 1;
                let reason = format!(
                    "tenant '{}' circuit open: observe shed, retry in {retry} virtual ns",
                    key.tenant
                );
                let gate_snapshot = gate.clone();
                let dep = inner.deployments.get_mut(&key).expect("checked above");
                let mut resp = Response::shed(retry, reason.clone());
                if request.chunk.is_some() {
                    // Degrade, never drop: the window the chunk belonged to
                    // must not finish as if it saw every chunk.
                    dep.monitor.abandon_window(reason);
                } else {
                    resp.report = Some(dep.monitor.observe_degraded(reason));
                }
                self.note_shed(&key.tenant);
                let pending = Self::tenant_pending(inner, &key.tenant);
                self.publish_gate(&key.tenant, &gate_snapshot, pending);
                resp.pending_chunks = Some(pending);
                return resp;
            }
            gate.state = GateState::HalfOpen;
            gate.half_open_successes = 0;
        }

        let response = if let Some(rows) = &request.outputs {
            self.observe_outputs(inner, &key, rows)
        } else if let Some(rows) = &request.chunk {
            self.observe_chunk(inner, &key, rows, now)
        } else if let Some(interval) = request.interval {
            // External intervals are validated by the monitor before they
            // touch any alarm state; a malformed interval is a hard error
            // that consumes no batch index.
            let dep = inner.deployments.get_mut(&key).expect("checked above");
            match dep.monitor.observe_interval(interval) {
                Ok(report) => {
                    let mut r = Response::ok();
                    r.batches_seen = Some(dep.monitor.batches_seen());
                    r.report = Some(report);
                    Ok(r)
                }
                Err(e) => Err(Box::new(Response::error(e.to_string()))),
            }
        } else {
            let estimate = request.estimate.expect("mode checked above");
            let dep = inner.deployments.get_mut(&key).expect("checked above");
            let report = dep.monitor.observe_estimate(estimate);
            let mut r = Response::ok();
            r.batches_seen = Some(dep.monitor.batches_seen());
            r.report = Some(report);
            Ok(r)
        };
        match response {
            Ok(mut resp) => {
                // An accepted observe is a success signal for the breaker.
                let gate = inner.tenants.entry(key.tenant.clone()).or_default();
                match gate.state {
                    GateState::Closed => gate.consecutive_overflows = 0,
                    GateState::HalfOpen => {
                        gate.half_open_successes += 1;
                        if gate.half_open_successes >= self.config.breaker.half_open_successes {
                            gate.state = GateState::Closed;
                            gate.consecutive_overflows = 0;
                        }
                    }
                    GateState::Open => {}
                }
                let gate_snapshot = gate.clone();
                let pending = Self::tenant_pending(inner, &key.tenant);
                self.publish_gate(&key.tenant, &gate_snapshot, pending);
                resp.pending_chunks = Some(pending);
                resp
            }
            Err(resp) => *resp,
        }
    }

    fn observe_outputs(
        &self,
        inner: &mut Inner,
        key: &MonitorKey,
        rows: &[Vec<f64>],
    ) -> Result<Response, Box<Response>> {
        let dep = inner.deployments.get_mut(key).expect("checked above");
        let proba = DenseMatrix::from_rows(rows)
            .map_err(|e| Box::new(Response::error(format!("bad outputs: {e}"))))?;
        let report = dep
            .monitor
            .observe_outputs(&proba)
            .map_err(|e| Box::new(Response::error(e.to_string())))?;
        let mut r = Response::ok();
        r.batches_seen = Some(dep.monitor.batches_seen());
        r.report = Some(report);
        Ok(r)
    }

    fn observe_chunk(
        &self,
        inner: &mut Inner,
        key: &MonitorKey,
        rows: &[Vec<f64>],
        now: u64,
    ) -> Result<Response, Box<Response>> {
        let pending = Self::tenant_pending(inner, &key.tenant);
        if pending >= self.config.queue_capacity {
            let gate = inner.tenants.entry(key.tenant.clone()).or_default();
            gate.sheds += 1;
            match gate.state {
                GateState::Closed => {
                    gate.consecutive_overflows += 1;
                    if gate.consecutive_overflows >= self.config.breaker.failure_threshold {
                        gate.state = GateState::Open;
                        gate.opened_at_nanos = now;
                    }
                }
                GateState::HalfOpen => {
                    // A failed probe re-opens immediately.
                    gate.state = GateState::Open;
                    gate.opened_at_nanos = now;
                }
                GateState::Open => {}
            }
            let retry = self.retry_after(&key.tenant, gate.consecutive_overflows, gate.sheds);
            let gate_snapshot = gate.clone();
            let reason = format!(
                "tenant '{}' over its in-flight chunk budget ({pending}/{}): chunk shed",
                key.tenant, self.config.queue_capacity
            );
            let dep = inner.deployments.get_mut(key).expect("checked above");
            // Degrade, never drop: the shed chunk's window finishes
            // degraded instead of pretending it saw every chunk.
            dep.monitor.abandon_window(reason.clone());
            self.note_shed(&key.tenant);
            let pending = Self::tenant_pending(inner, &key.tenant);
            self.publish_gate(&key.tenant, &gate_snapshot, pending);
            let mut resp = Response::shed(retry, reason);
            resp.pending_chunks = Some(pending);
            return Err(Box::new(resp));
        }
        let dep = inner.deployments.get_mut(key).expect("checked above");
        let proba = DenseMatrix::from_rows(rows)
            .map_err(|e| Box::new(Response::error(format!("bad chunk: {e}"))))?;
        if proba.rows() > 0 && proba.cols() != dep.monitor.predictor().n_classes() {
            return Err(Box::new(Response::error(format!(
                "chunk has {} columns but {key} serves {} classes",
                proba.cols(),
                dep.monitor.predictor().n_classes()
            ))));
        }
        dep.monitor
            .observe_output_chunk(&proba)
            .map_err(|e| Box::new(Response::error(e.to_string())))?;
        let mut r = Response::ok();
        r.batches_seen = Some(dep.monitor.batches_seen());
        Ok(r)
    }

    fn finish(&self, request: Request) -> Response {
        let key = match Self::require_key(&request) {
            Ok(key) => key,
            Err(resp) => return *resp,
        };
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let Some(dep) = inner.deployments.get_mut(&key) else {
            return Response::error(format!("unknown deployment {key}"));
        };
        let result = dep.monitor.finish_window();
        let batches_seen = dep.monitor.batches_seen();
        let gate_snapshot = inner.tenants.entry(key.tenant.clone()).or_default().clone();
        let pending = Self::tenant_pending(inner, &key.tenant);
        self.publish_gate(&key.tenant, &gate_snapshot, pending);
        match result {
            Ok(report) => {
                let mut r = Response::ok();
                r.report = Some(report);
                r.batches_seen = Some(batches_seen);
                r.pending_chunks = Some(pending);
                r
            }
            Err(e) => Response::error(e.to_string()),
        }
    }

    fn history(&self, request: Request) -> Response {
        let key = match Self::require_key(&request) {
            Ok(key) => key,
            Err(resp) => return *resp,
        };
        let inner = self.lock_inner();
        let Some(dep) = inner.deployments.get(&key) else {
            return Response::error(format!("unknown deployment {key}"));
        };
        let reports = dep.monitor.history();
        let offset = request.offset.unwrap_or(0);
        let limit = request.limit.unwrap_or(reports.len());
        let mut r = Response::ok();
        r.history = Some(reports.iter().skip(offset).take(limit).cloned().collect());
        r.batches_seen = Some(dep.monitor.batches_seen());
        r
    }

    fn metrics(&self) -> Response {
        let mut r = Response::ok();
        r.metrics = Some(self.registry.snapshot().deterministic());
        r
    }

    fn list(&self) -> Response {
        let inner = self.lock_inner();
        let mut r = Response::ok();
        r.deployments = Some(inner.deployments.keys().cloned().collect());
        r
    }

    /// Snapshot of the registry contents, for embedding and tests.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.lock_inner();
        RegistrySnapshot {
            version: ARTIFACT_VERSION,
            deployments: inner
                .deployments
                .iter()
                .map(|(key, dep)| DeploymentEntry {
                    key: key.clone(),
                    artifact: ServingArtifact::from_monitor(&dep.monitor),
                })
                .collect(),
        }
    }

    fn save(&self, request: Request) -> Response {
        let Some(path) = request.path else {
            return Response::error("save requires a path");
        };
        let snapshot = self.snapshot();
        match save_json(&snapshot, &path) {
            Ok(()) => {
                let mut r = Response::ok();
                r.message = Some(format!(
                    "saved {} deployments to {path}",
                    snapshot.deployments.len()
                ));
                r
            }
            Err(e) => Response::error(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use lvp_core::{MonitorPolicy, PerformancePredictor, PredictorConfig};
    use lvp_corruptions::standard_tabular_suite;
    use lvp_dataframe::toy_frame;
    use lvp_models::train_logistic_regression;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn artifact() -> ServingArtifact {
        let df = toy_frame(220);
        let mut rng = StdRng::seed_from_u64(17);
        let (train, rest) = df.split_frac(0.4, &mut rng);
        let (test, _serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let monitor = BatchMonitor::new(predictor, MonitorPolicy::default()).unwrap();
        ServingArtifact::from_monitor(&monitor)
    }

    fn key(tenant: &str) -> MonitorKey {
        MonitorKey {
            tenant: tenant.to_string(),
            model: "fraud".to_string(),
            version: "v1".to_string(),
        }
    }

    fn register(daemon: &Daemon, key: &MonitorKey, artifact: ServingArtifact) {
        let mut req = Request::targeted("register", key);
        req.artifact = Some(artifact);
        let resp = daemon.handle_request(req);
        assert!(resp.is_ok(), "register failed: {:?}", resp.message);
    }

    fn chunk_rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let p = 0.2 + 0.6 * (i as f64 / n.max(1) as f64);
                vec![p, 1.0 - p]
            })
            .collect()
    }

    #[test]
    fn register_observe_finish_history_round_trip() {
        let daemon = Daemon::new(DaemonConfig::default());
        let k = key("acme");
        register(&daemon, &k, artifact());

        let mut req = Request::targeted("observe", &k);
        req.estimate = Some(0.81);
        let resp = daemon.handle_request(req);
        assert!(resp.is_ok());
        assert_eq!(resp.batches_seen, Some(1));
        assert!(resp.report.unwrap().estimate.is_finite());

        for _ in 0..2 {
            let mut req = Request::targeted("observe", &k);
            req.chunk = Some(chunk_rows(16));
            let resp = daemon.handle_request(req);
            assert!(resp.is_ok(), "chunk rejected: {:?}", resp.message);
        }
        let resp = daemon.handle_request(Request::targeted("finish", &k));
        assert!(resp.is_ok(), "finish failed: {:?}", resp.message);
        let report = resp.report.unwrap();
        assert!(report.estimate.is_finite() && !report.degraded);
        assert_eq!(resp.pending_chunks, Some(0));

        let mut req = Request::targeted("history", &k);
        req.limit = Some(1);
        req.offset = Some(1);
        let resp = daemon.handle_request(req);
        let history = resp.history.unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].batch_index, 1);

        let resp = daemon.handle_request(Request::new("list"));
        assert_eq!(resp.deployments.unwrap(), vec![k]);
        assert!(daemon
            .handle_request(Request::new("metrics"))
            .metrics
            .is_some());
    }

    #[test]
    fn overflow_sheds_trip_the_breaker_and_cooldown_recovers() {
        let config = DaemonConfig {
            queue_capacity: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_nanos: 2_000_000, // two request ticks
                half_open_successes: 2,
            },
            ..DaemonConfig::default()
        };
        let daemon = Daemon::new(config);
        let k = key("noisy");
        register(&daemon, &k, artifact());

        let chunk = |daemon: &Daemon| {
            let mut req = Request::targeted("observe", &k);
            req.chunk = Some(chunk_rows(8));
            daemon.handle_request(req)
        };

        assert!(chunk(&daemon).is_ok()); // pending: 1 == capacity
        let shed = chunk(&daemon);
        assert!(shed.is_shed());
        assert!(shed.retry_after_nanos.unwrap() > 0);
        assert_eq!(daemon.tenant_circuit("noisy"), CircuitState::Closed);

        let shed = chunk(&daemon); // second consecutive overflow trips it
        assert!(shed.is_shed());
        assert_eq!(daemon.tenant_circuit("noisy"), CircuitState::Open);

        // Open breaker sheds even estimate observes, recording the loss as
        // a degraded batch (never dropping it).
        let mut req = Request::targeted("observe", &k);
        req.estimate = Some(0.8);
        let resp = daemon.handle_request(req);
        assert!(resp.is_shed());
        let degraded = resp.report.unwrap();
        assert!(degraded.estimate.is_nan());
        assert!(degraded.degrade_reason.unwrap().contains("circuit open"));

        // The poisoned window still finishes (degraded), freeing the budget.
        let resp = daemon.handle_request(Request::targeted("finish", &k));
        assert!(resp.is_ok());
        assert!(resp
            .report
            .unwrap()
            .degrade_reason
            .unwrap()
            .contains("budget"));
        assert_eq!(resp.pending_chunks, Some(0));

        // Cooldown has elapsed on the virtual clock; two successful probes
        // close the breaker.
        for expected in [CircuitState::HalfOpen, CircuitState::Closed] {
            let mut req = Request::targeted("observe", &k);
            req.estimate = Some(0.8);
            assert!(daemon.handle_request(req).is_ok());
            assert_eq!(daemon.tenant_circuit("noisy"), expected);
        }
        assert!(chunk(&daemon).is_ok());
    }

    #[test]
    fn malformed_and_invalid_requests_answer_with_errors() {
        let daemon = Daemon::new(DaemonConfig::default());
        let resp: Response = serde_json::from_str(&daemon.handle_line("{ not json")).unwrap();
        assert_eq!(resp.status, "error");
        assert!(daemon.handle_request(Request::new("frobnicate")).status == "error");

        let k = key("ghost");
        let mut req = Request::targeted("observe", &k);
        req.estimate = Some(0.5);
        let resp = daemon.handle_request(req);
        assert!(resp.message.unwrap().contains("unknown deployment"));

        register(&daemon, &k, artifact());
        // No mode at all, then two modes at once: both rejected.
        let resp = daemon.handle_request(Request::targeted("observe", &k));
        assert!(resp.message.unwrap().contains("exactly one"));
        let mut req = Request::targeted("observe", &k);
        req.estimate = Some(0.5);
        req.chunk = Some(chunk_rows(4));
        let resp = daemon.handle_request(req);
        assert!(resp.message.unwrap().contains("exactly one"));

        // Mis-shaped chunk: column count must match the class count.
        let mut req = Request::targeted("observe", &k);
        req.chunk = Some(vec![vec![0.2, 0.3, 0.5]]);
        let resp = daemon.handle_request(req);
        assert!(resp.message.unwrap().contains("classes"));
    }

    #[test]
    fn registry_snapshot_restores_bit_identically() {
        let dir = std::env::temp_dir().join(format!("lvpd-daemon-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let first = dir.join("registry-a.json");
        let second = dir.join("registry-b.json");

        let daemon = Daemon::new(DaemonConfig::default());
        register(&daemon, &key("acme"), artifact());
        register(&daemon, &key("bravo"), artifact());
        let mut req = Request::targeted("observe", &key("acme"));
        req.estimate = Some(0.77);
        daemon.handle_request(req);
        // Leave an open in-flight window: it must survive the restart.
        let mut req = Request::targeted("observe", &key("bravo"));
        req.chunk = Some(chunk_rows(12));
        assert!(daemon.handle_request(req).is_ok());

        let mut req = Request::new("save");
        req.path = Some(first.to_string_lossy().into_owned());
        assert!(daemon.handle_request(req).is_ok());

        let restored = Daemon::with_state_file(DaemonConfig::default(), &first).unwrap();
        let mut req = Request::new("save");
        req.path = Some(second.to_string_lossy().into_owned());
        assert!(restored.handle_request(req).is_ok());
        assert_eq!(
            std::fs::read(&first).unwrap(),
            std::fs::read(&second).unwrap(),
            "registry snapshot must round-trip bit-identically"
        );

        // The restored in-flight window still finishes into a real report.
        let resp = restored.handle_request(Request::targeted("finish", &key("bravo")));
        assert!(resp.is_ok(), "finish after restore: {:?}", resp.message);
        assert!(resp.report.unwrap().estimate.is_finite());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
