//! The daemon state machine: a registry of deployed monitors plus
//! per-tenant admission control, independent of any transport.
//!
//! [`Daemon::handle_line`] maps one request line to one response line, so
//! the whole protocol is testable without a socket; the TCP listener in
//! [`crate::net`] is a thin framing layer over it.
//!
//! ## Admission control
//!
//! Streaming chunks are the unbounded input: a tenant can open windows on
//! every deployment and feed them forever without calling `finish`. Each
//! tenant therefore gets a bounded in-flight budget — the total number of
//! chunks sitting in the tenant's unfinished windows. A chunk that would
//! exceed the budget is *shed*, 429-style: the response carries a
//! deterministic retry-after hint (exponential in the tenant's consecutive
//! overflows, jittered like the [`lvp_models::ResilientModel`] backoff),
//! and the target window is poisoned so its eventual `finish` reports a
//! degraded batch — shed load degrades monitor state, it never silently
//! disappears from it. Sustained overflow trips a per-tenant circuit
//! breaker (same [`BreakerConfig`]/[`CircuitState`] vocabulary as the
//! resilience layer): while open, every observe from the tenant is shed
//! immediately with the remaining cooldown as the retry-after, and each
//! shed full batch is recorded as a degraded report. Cooldowns run on a
//! [`VirtualClock`] advanced a fixed tick per request, so breaker behavior
//! is a pure function of the request sequence.

use crate::journal::{scan_journal, FsyncPolicy, Journal, JournalFaultPlan, JournalOp};
use crate::protocol::{DeploymentEntry, MonitorKey, RegistrySnapshot, Request, Response};
use lvp_core::{
    feature_dimensionality, load_json, save_json, BatchMonitor, ServingArtifact, ARTIFACT_VERSION,
};
use lvp_linalg::DenseMatrix;
use lvp_models::{mix64, BlackBoxModel, BreakerConfig, CircuitState, ModelError, VirtualClock};
use lvp_telemetry::{Counter, Histogram, Registry};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Stand-in for the black box model of a registered deployment. The model
/// itself serves in the tenant's own infrastructure; the daemon only ever
/// receives its *outputs* (or score estimates), so the monitor's model
/// handle exists purely to satisfy the predictor's class-count contract.
struct DetachedModel {
    n_classes: usize,
    label: String,
}

impl BlackBoxModel for DetachedModel {
    fn predict_proba(&self, _data: &lvp_dataframe::DataFrame) -> DenseMatrix {
        // Unreachable through the daemon: every observe path feeds
        // pre-computed outputs or estimates. Fail loudly if a future code
        // path tries to score raw frames against a detached handle.
        panic!(
            "detached model '{}' cannot predict; submit model outputs instead",
            self.label
        )
    }

    fn try_predict_proba(
        &self,
        _data: &lvp_dataframe::DataFrame,
    ) -> Result<DenseMatrix, ModelError> {
        Err(ModelError::invalid_input(format!(
            "detached model '{}' cannot predict; submit model outputs instead",
            self.label
        )))
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &str {
        "detached"
    }
}

/// Admission-control and retention knobs of a [`Daemon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Per-tenant budget of in-flight chunks (chunks folded into windows
    /// not yet closed by `finish`); the next chunk beyond it is shed.
    pub queue_capacity: u64,
    /// Per-tenant circuit breaker tripped by consecutive overflows.
    pub breaker: BreakerConfig,
    /// Virtual nanoseconds the clock advances per handled request; breaker
    /// cooldowns are measured in these ticks, so behavior is a pure
    /// function of the request sequence.
    pub clock_tick_nanos: u64,
    /// Base of the exponential retry-after hint on overflow sheds.
    pub base_retry_nanos: u64,
    /// Cap on the un-jittered exponential retry-after.
    pub max_retry_nanos: u64,
    /// Seed of the deterministic retry-after jitter.
    pub jitter_seed: u64,
    /// Report-history bound applied to every registered monitor (`None`
    /// retains everything; daemons should bound it).
    pub history_limit: Option<usize>,
    /// Upper bound on one request line in bytes; longer lines are
    /// discarded unread and answered with a typed error instead of
    /// buffering without limit.
    pub max_request_bytes: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            breaker: BreakerConfig::default(),
            clock_tick_nanos: 1_000_000, // 1 virtual ms per request
            base_retry_nanos: 10_000_000,
            max_retry_nanos: 1_000_000_000,
            jitter_seed: 0x1_5EED_D0E5,
            history_limit: Some(256),
            max_request_bytes: 16 << 20, // 16 MiB
        }
    }
}

/// Durability wiring of a [`Daemon`]: where its recovery snapshot and
/// write-ahead journal live, and how eagerly the journal fsyncs. All
/// fields are optional — an empty config is a purely in-memory daemon.
#[derive(Debug, Clone, Default)]
pub struct DurabilityConfig {
    /// The recovery snapshot: loaded by [`Daemon::recover`], compacted to
    /// by `save` requests targeting this path, and written on shutdown.
    pub snapshot_path: Option<PathBuf>,
    /// The write-ahead journal: every accepted mutation is appended here
    /// *before* it is applied.
    pub journal_path: Option<PathBuf>,
    /// The journal's fsync policy.
    pub fsync: FsyncPolicy,
}

impl DurabilityConfig {
    /// The conventional layout inside a state directory:
    /// `<dir>/registry.json` + `<dir>/observe.journal`.
    pub fn in_dir(dir: impl AsRef<Path>) -> Self {
        let dir = dir.as_ref();
        Self {
            snapshot_path: Some(dir.join("registry.json")),
            journal_path: Some(dir.join("observe.journal")),
            fsync: FsyncPolicy::default(),
        }
    }

    /// Same layout with an explicit fsync policy.
    pub fn in_dir_with_fsync(dir: impl AsRef<Path>, fsync: FsyncPolicy) -> Self {
        Self {
            fsync,
            ..Self::in_dir(dir)
        }
    }
}

/// What [`Daemon::recover`] found and did. Every count is also surfaced
/// as a `journal.*` telemetry counter on the recovered daemon.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a registry snapshot file existed and was loaded.
    pub snapshot_loaded: bool,
    /// Deployments restored from the snapshot.
    pub snapshot_deployments: usize,
    /// Bytes found in the journal file.
    pub journal_bytes: u64,
    /// Records replayed over the snapshot (current epoch).
    pub records_replayed: usize,
    /// Records skipped as stale — an older epoch already folded into the
    /// snapshot by a compaction the crash interrupted after the snapshot
    /// write.
    pub records_stale: usize,
    /// Records skipped as future — a *newer* epoch than the snapshot,
    /// meaning the snapshot is not this journal's recovery source (e.g. a
    /// standalone export). Nothing is guessed: the records are skipped
    /// and counted, never misapplied.
    pub records_future: usize,
    /// Replayed records whose application errored — by construction the
    /// same error the live daemon answered, so these are reproduced
    /// no-ops, not divergence.
    pub replay_op_errors: usize,
    /// Bytes of damaged tail truncated off the journal.
    pub truncated_tail_bytes: u64,
    /// Human-readable classification of the tail defect, if any.
    pub tail_defect: Option<String>,
}

impl RecoveryReport {
    /// One-line operator summary (printed by `lvpd` at startup).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "recovered {} deployments from snapshot={} journal={}B: {} replayed, {} stale, {} future, {} op errors",
            self.snapshot_deployments,
            if self.snapshot_loaded { "yes" } else { "no" },
            self.journal_bytes,
            self.records_replayed,
            self.records_stale,
            self.records_future,
            self.replay_op_errors,
        );
        if let Some(defect) = &self.tail_defect {
            s.push_str(&format!(
                "; truncated {}B damaged tail ({defect})",
                self.truncated_tail_bytes
            ));
        }
        s
    }
}

/// Per-tenant admission gate: circuit breaker plus overflow bookkeeping.
/// The in-flight chunk count is *not* stored here — it is derived from the
/// open windows of the tenant's monitors, so it survives a registry
/// save/restore cycle with no extra state.
#[derive(Debug, Clone, Default)]
struct TenantGate {
    state: GateState,
    consecutive_overflows: u32,
    half_open_successes: u32,
    opened_at_nanos: u64,
    sheds: u64,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum GateState {
    #[default]
    Closed,
    Open,
    HalfOpen,
}

impl GateState {
    fn circuit(self) -> CircuitState {
        match self {
            GateState::Closed => CircuitState::Closed,
            GateState::Open => CircuitState::Open,
            GateState::HalfOpen => CircuitState::HalfOpen,
        }
    }

    /// Numeric encoding for the per-tenant breaker gauge.
    fn gauge_value(self) -> f64 {
        match self {
            GateState::Closed => 0.0,
            GateState::Open => 1.0,
            GateState::HalfOpen => 2.0,
        }
    }
}

struct Deployment {
    monitor: BatchMonitor,
}

#[derive(Default)]
struct Inner {
    deployments: BTreeMap<MonitorKey, Deployment>,
    tenants: BTreeMap<String, TenantGate>,
    /// The write-ahead journal, when durability is configured. Living
    /// under the state mutex guarantees append order == application
    /// order, which is what makes replay bit-identical.
    journal: Option<Journal>,
}

/// Daemon-level request counters (all deterministic in the request
/// sequence, except the volatile fsync latency histogram).
struct ServerMetrics {
    /// `server.requests` — lines handled.
    requests: Counter,
    /// `server.registrations` — deployments (re)installed.
    registrations: Counter,
    /// `server.shed_requests` — observes rejected by admission control.
    shed: Counter,
    /// `server.error_responses` — lines answered with an error status.
    errors: Counter,
    /// `server.oversized_requests` — request lines discarded for
    /// exceeding [`DaemonConfig::max_request_bytes`].
    oversized: Counter,
    /// `journal.appends` — records appended to the write-ahead journal.
    journal_appends: Counter,
    /// `journal.append_failures` — appends that failed (the request was
    /// rejected without being applied).
    journal_append_failures: Counter,
    /// `journal.compactions` — snapshot saves that truncated the journal.
    journal_compactions: Counter,
    /// `journal.records_replayed` — records applied during recovery.
    journal_replayed: Counter,
    /// `journal.replay_op_errors` — replayed records that reproduced the
    /// live request's error (no-ops, counted for visibility).
    journal_replay_errors: Counter,
    /// `journal.stale_records_skipped` — pre-compaction records skipped
    /// during recovery.
    journal_stale_skipped: Counter,
    /// `journal.future_records_skipped` — records newer than the snapshot
    /// epoch, skipped rather than misapplied.
    journal_future_skipped: Counter,
    /// `journal.tail_defects` — damaged journal tails found at recovery.
    journal_tail_defects: Counter,
    /// `journal.tail_truncated_bytes` — damaged bytes truncated away.
    journal_tail_truncated: Counter,
    /// `journal.fsync_latency` — wall-clock fsync durations (volatile:
    /// both values and count depend on the fsync policy and hardware).
    fsync_latency: Histogram,
}

/// The lvpd daemon: a registry of deployed monitors keyed by
/// `(tenant, model, version)` with per-tenant admission control, exposed
/// as a pure line-in/line-out request handler.
pub struct Daemon {
    inner: Mutex<Inner>,
    registry: Registry,
    metrics: ServerMetrics,
    clock: VirtualClock,
    config: DaemonConfig,
    durability: DurabilityConfig,
    shutdown: AtomicBool,
}

/// FNV-1a over a tenant name, for per-tenant jitter derivation.
fn tenant_hash(tenant: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl Daemon {
    /// An empty daemon.
    pub fn new(config: DaemonConfig) -> Self {
        let registry = Registry::new();
        let metrics = ServerMetrics {
            requests: registry.counter("server.requests"),
            registrations: registry.counter("server.registrations"),
            shed: registry.counter("server.shed_requests"),
            errors: registry.counter("server.error_responses"),
            oversized: registry.counter("server.oversized_requests"),
            journal_appends: registry.counter("journal.appends"),
            journal_append_failures: registry.counter("journal.append_failures"),
            journal_compactions: registry.counter("journal.compactions"),
            journal_replayed: registry.counter("journal.records_replayed"),
            journal_replay_errors: registry.counter("journal.replay_op_errors"),
            journal_stale_skipped: registry.counter("journal.stale_records_skipped"),
            journal_future_skipped: registry.counter("journal.future_records_skipped"),
            journal_tail_defects: registry.counter("journal.tail_defects"),
            journal_tail_truncated: registry.counter("journal.tail_truncated_bytes"),
            fsync_latency: registry.volatile_histogram("journal.fsync_latency"),
        };
        Self {
            inner: Mutex::new(Inner::default()),
            registry,
            metrics,
            clock: VirtualClock::new(),
            config,
            durability: DurabilityConfig::default(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// A daemon whose registry is restored from a [`RegistrySnapshot`]
    /// file previously written by the `save` verb. Monitor state — open
    /// streaming windows included — carries over bit-identically. This is
    /// the *standalone* restore path: no journal is attached and any
    /// `journal_epoch` in the file is ignored; use [`Self::recover`] for
    /// the full snapshot + journal-replay startup.
    pub fn with_state_file(config: DaemonConfig, path: impl AsRef<Path>) -> Result<Self, String> {
        let snapshot: RegistrySnapshot = load_json(path.as_ref()).map_err(|e| e.to_string())?;
        if snapshot.version == 0 || snapshot.version > ARTIFACT_VERSION {
            return Err(format!(
                "unsupported registry snapshot version {} (supported: 1..={ARTIFACT_VERSION})",
                snapshot.version
            ));
        }
        let daemon = Self::new(config);
        {
            let mut inner = daemon.lock_inner();
            for entry in snapshot.deployments {
                daemon.install(&mut inner, entry.key, entry.artifact)?;
            }
        }
        Ok(daemon)
    }

    /// Crash-recovering startup: loads the last registry snapshot (if the
    /// configured file exists), replays the write-ahead journal tail over
    /// it, truncates any damaged tail to the last durable record, and
    /// leaves the journal open for appending. Monitors are deterministic,
    /// so the recovered registry is bit-identical to the pre-crash one up
    /// to the last durable journal record.
    ///
    /// Defects are never fatal: a torn or bit-flipped tail is classified
    /// and truncated ([`RecoveryReport::tail_defect`], `journal.tail_*`
    /// counters), stale/future-epoch records are skipped and counted.
    /// Only unreadable files (I/O or a corrupt snapshot envelope) error.
    pub fn recover(
        config: DaemonConfig,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), String> {
        let mut daemon = Self::new(config);
        daemon.durability = durability.clone();
        let mut report = RecoveryReport::default();
        let mut epoch = 0u64;

        if let Some(path) = durability.snapshot_path.as_deref().filter(|p| p.exists()) {
            let snapshot: RegistrySnapshot =
                load_json(path).map_err(|e| format!("recover registry snapshot: {e}"))?;
            if snapshot.version == 0 || snapshot.version > ARTIFACT_VERSION {
                return Err(format!(
                    "unsupported registry snapshot version {} (supported: 1..={ARTIFACT_VERSION})",
                    snapshot.version
                ));
            }
            epoch = snapshot.journal_epoch.unwrap_or(0);
            let mut inner = daemon.lock_inner();
            for entry in snapshot.deployments {
                daemon.install(&mut inner, entry.key, entry.artifact)?;
            }
            report.snapshot_loaded = true;
            report.snapshot_deployments = inner.deployments.len();
        }

        if let Some(jpath) = durability.journal_path.as_deref() {
            if jpath.exists() {
                let bytes = std::fs::read(jpath)
                    .map_err(|e| format!("read journal {}: {e}", jpath.display()))?;
                report.journal_bytes = bytes.len() as u64;
                let scan = scan_journal(&bytes);
                {
                    let mut inner = daemon.lock_inner();
                    let inner = &mut *inner;
                    for record in scan.records {
                        match record.epoch.cmp(&epoch) {
                            std::cmp::Ordering::Less => report.records_stale += 1,
                            std::cmp::Ordering::Greater => report.records_future += 1,
                            std::cmp::Ordering::Equal => {
                                report.records_replayed += 1;
                                if daemon.apply_op(inner, record.op).is_err() {
                                    // The live daemon answered this exact
                                    // request with an error and applied
                                    // nothing; the replay just reproduced
                                    // that no-op.
                                    report.replay_op_errors += 1;
                                }
                            }
                        }
                    }
                }
                if let Some(defect) = scan.defect {
                    report.truncated_tail_bytes = (bytes.len() - scan.valid_len) as u64;
                    report.tail_defect = Some(defect.to_string());
                    let file = std::fs::OpenOptions::new()
                        .write(true)
                        .open(jpath)
                        .map_err(|e| format!("open journal for repair: {e}"))?;
                    file.set_len(scan.valid_len as u64)
                        .map_err(|e| format!("truncate damaged journal tail: {e}"))?;
                    file.sync_all()
                        .map_err(|e| format!("sync repaired journal: {e}"))?;
                }
            }
            let journal = Journal::open(jpath, durability.fsync, epoch)
                .map_err(|e| format!("open journal {}: {e}", jpath.display()))?;
            daemon.lock_inner().journal = Some(journal);
        }

        daemon
            .metrics
            .journal_replayed
            .add(report.records_replayed as u64);
        daemon
            .metrics
            .journal_replay_errors
            .add(report.replay_op_errors as u64);
        daemon
            .metrics
            .journal_stale_skipped
            .add(report.records_stale as u64);
        daemon
            .metrics
            .journal_future_skipped
            .add(report.records_future as u64);
        if report.tail_defect.is_some() {
            daemon.metrics.journal_tail_defects.inc();
            daemon
                .metrics
                .journal_tail_truncated
                .add(report.truncated_tail_bytes);
        }
        Ok((daemon, report))
    }

    /// The daemon's metrics registry (scraped by the `metrics` verb).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The daemon's admission/retention configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// The journal's current compaction epoch (`None` without a journal).
    pub fn journal_epoch(&self) -> Option<u64> {
        self.lock_inner().journal.as_ref().map(Journal::epoch)
    }

    /// Wraps the live journal sink in a seeded fault injector — test and
    /// chaos-example plumbing; a no-op without a journal.
    pub fn inject_journal_faults(&self, plan: JournalFaultPlan) {
        if let Some(journal) = self.lock_inner().journal.as_mut() {
            journal.wrap_sink(|sink| Box::new(crate::journal::FaultFile::new(sink, plan)));
        }
    }

    /// The virtual clock admission cooldowns run on.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The tenant's current admission circuit state (`Closed` for tenants
    /// the daemon has never seen).
    pub fn tenant_circuit(&self, tenant: &str) -> CircuitState {
        self.lock_inner()
            .tenants
            .get(tenant)
            .map(|gate| gate.state.circuit())
            .unwrap_or(CircuitState::Closed)
    }

    /// Whether a `shutdown` request has been received.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (also reachable through the `shutdown` verb).
    ///
    /// The first call flushes durable state: with a configured snapshot
    /// path the registry is saved there (compacting the journal); with
    /// only a journal configured, the journal is fsynced so every
    /// acknowledged mutation survives. Failures are reported on stderr —
    /// shutdown proceeds regardless, and the journal still holds whatever
    /// was durable before the failure.
    pub fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(path) = self.durability.snapshot_path.clone() {
            if let Err(e) = self.save_to(&path) {
                eprintln!("lvpd: shutdown save failed: {e}");
            }
        } else if let Some(journal) = self.lock_inner().journal.as_mut() {
            if let Err(e) = journal.flush() {
                eprintln!("lvpd: shutdown journal flush failed: {e}");
            }
        }
    }

    /// State access, recovering a poisoned lock: every mutation is a
    /// single monitor/gate method call, so a panicking handler thread
    /// leaves valid state behind and must not brick the daemon (mirroring
    /// the telemetry registry's poisoning policy).
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Handles one request line, returning the response line (without the
    /// trailing newline). Never panics on malformed input — parse and
    /// validation failures come back as `status: "error"` responses.
    pub fn handle_line(&self, line: &str) -> String {
        let response = match serde_json::from_str::<Request>(line) {
            Ok(request) => self.handle_request(request),
            Err(e) => {
                self.clock.advance(self.config.clock_tick_nanos);
                self.metrics.requests.inc();
                self.metrics.errors.inc();
                Response::error(format!("malformed request: {e}"))
            }
        };
        serde_json::to_string(&response)
            .unwrap_or_else(|e| format!("{{\"status\":\"error\",\"message\":\"encode: {e}\"}}"))
    }

    /// The response line for a request whose raw bytes exceeded
    /// [`DaemonConfig::max_request_bytes`]. The transport calls this
    /// *instead of* [`Self::handle_line`] — the oversized line was never
    /// fully buffered, so there is nothing to parse — and the rejection
    /// still ticks the clock and the request/error counters like any
    /// other handled request.
    pub fn reject_oversized(&self) -> String {
        self.clock.advance(self.config.clock_tick_nanos);
        self.metrics.requests.inc();
        self.metrics.errors.inc();
        self.metrics.oversized.inc();
        let response = Response::error(format!(
            "request line exceeds max_request_bytes ({}); raise the cap or split the batch",
            self.config.max_request_bytes
        ));
        serde_json::to_string(&response)
            .unwrap_or_else(|e| format!("{{\"status\":\"error\",\"message\":\"encode: {e}\"}}"))
    }

    /// Typed entry point behind [`Self::handle_line`] (useful for
    /// embedding the daemon without a socket). Advances the virtual clock
    /// one tick, so admission timing is a pure function of the request
    /// sequence.
    pub fn handle_request(&self, request: Request) -> Response {
        self.clock.advance(self.config.clock_tick_nanos);
        self.metrics.requests.inc();
        let response = self.dispatch(request);
        if response.status == "error" {
            self.metrics.errors.inc();
        }
        response
    }

    fn dispatch(&self, request: Request) -> Response {
        match request.verb.as_str() {
            "register" => self.register(request),
            "observe" => self.observe(request),
            "finish" => self.finish(request),
            "history" => self.history(request),
            "metrics" => self.metrics(),
            "list" => self.list(),
            "save" => self.save(request),
            "shutdown" => {
                self.request_shutdown();
                let mut r = Response::ok();
                r.message = Some("shutting down".to_string());
                r
            }
            other => Response::error(format!("unknown verb '{other}'")),
        }
    }

    /// Appends `op` to the write-ahead journal (a no-op without one).
    /// Called *before* the mutation it describes; on failure the caller
    /// returns the error response and applies nothing, preserving the
    /// invariant that replaying the journal reproduces exactly the
    /// mutations the daemon acknowledged.
    fn journal_append(&self, inner: &mut Inner, op: &JournalOp) -> Result<(), Box<Response>> {
        let Some(journal) = inner.journal.as_mut() else {
            return Ok(());
        };
        match journal.append(op) {
            Ok(sync_nanos) => {
                self.metrics.journal_appends.inc();
                if let Some(nanos) = sync_nanos {
                    self.metrics.fsync_latency.record_nanos(nanos);
                }
                Ok(())
            }
            Err(e) => {
                self.metrics.journal_append_failures.inc();
                Err(Box::new(Response::error(format!(
                    "write-ahead journal append failed; request not applied: {e}"
                ))))
            }
        }
    }

    fn deployment_mut<'a>(
        inner: &'a mut Inner,
        key: &MonitorKey,
    ) -> Result<&'a mut Deployment, String> {
        inner
            .deployments
            .get_mut(key)
            .ok_or_else(|| format!("unknown deployment {key}"))
    }

    /// Applies one journaled operation during recovery — the replay twin
    /// of the live mutation paths, minus admission control (the ops were
    /// already admitted when journaled; shed decisions were journaled as
    /// their effects). Errors here reproduce errors the live daemon
    /// already answered, so they are counted and skipped, never fatal.
    fn apply_op(&self, inner: &mut Inner, op: JournalOp) -> Result<(), String> {
        match op {
            JournalOp::Register { key, artifact } => self.install(inner, key, artifact).map(|_| ()),
            JournalOp::ObserveOutputs { key, rows } => {
                let dep = Self::deployment_mut(inner, &key)?;
                let proba =
                    DenseMatrix::from_rows(&rows).map_err(|e| format!("bad outputs: {e}"))?;
                dep.monitor
                    .observe_outputs(&proba)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }
            JournalOp::ObserveChunk { key, rows } => {
                let dep = Self::deployment_mut(inner, &key)?;
                let proba = DenseMatrix::from_rows(&rows).map_err(|e| format!("bad chunk: {e}"))?;
                if proba.rows() > 0 && proba.cols() != dep.monitor.predictor().n_classes() {
                    return Err(format!(
                        "chunk has {} columns but {key} serves {} classes",
                        proba.cols(),
                        dep.monitor.predictor().n_classes()
                    ));
                }
                dep.monitor
                    .observe_output_chunk(&proba)
                    .map_err(|e| e.to_string())
            }
            JournalOp::ObserveEstimate { key, estimate } => {
                let dep = Self::deployment_mut(inner, &key)?;
                dep.monitor.observe_estimate(estimate);
                Ok(())
            }
            JournalOp::ObserveInterval { key, interval } => {
                let dep = Self::deployment_mut(inner, &key)?;
                dep.monitor
                    .observe_interval(interval)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }
            JournalOp::Finish { key } => {
                let dep = Self::deployment_mut(inner, &key)?;
                dep.monitor
                    .finish_window()
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }
            JournalOp::AbandonWindow { key, reason } => {
                let dep = Self::deployment_mut(inner, &key)?;
                dep.monitor.abandon_window(reason);
                Ok(())
            }
            JournalOp::ObserveDegraded { key, reason } => {
                let dep = Self::deployment_mut(inner, &key)?;
                dep.monitor.observe_degraded(reason);
                Ok(())
            }
        }
    }

    fn require_key(request: &Request) -> Result<MonitorKey, Box<Response>> {
        match (&request.tenant, &request.model, &request.version) {
            (Some(tenant), Some(model), Some(version)) => Ok(MonitorKey {
                tenant: tenant.clone(),
                model: model.clone(),
                version: version.clone(),
            }),
            _ => Err(Box::new(Response::error(
                "tenant, model and version are all required for this verb",
            ))),
        }
    }

    /// Installs (or replaces) a deployment, attaching per-tenant telemetry
    /// and the configured history bound.
    fn install(
        &self,
        inner: &mut Inner,
        key: MonitorKey,
        artifact: ServingArtifact,
    ) -> Result<usize, String> {
        let n_classes = artifact
            .predictor
            .n_classes
            .unwrap_or(artifact.predictor.n_feature_dims / feature_dimensionality(1));
        if n_classes == 0 {
            return Err(format!("register {key}: artifact declares zero classes"));
        }
        let model: Arc<dyn BlackBoxModel> = Arc::new(DetachedModel {
            n_classes,
            label: key.to_string(),
        });
        let mut monitor = artifact
            .into_monitor(model)
            .map_err(|e| format!("register {key}: {e}"))?;
        monitor.set_history_limit(self.config.history_limit);
        monitor.attach_telemetry_prefixed(&self.registry, &key.metric_prefix());
        let batches_seen = monitor.batches_seen();
        inner.tenants.entry(key.tenant.clone()).or_default();
        inner.deployments.insert(key, Deployment { monitor });
        self.metrics.registrations.inc();
        Ok(batches_seen)
    }

    fn register(&self, request: Request) -> Response {
        let key = match Self::require_key(&request) {
            Ok(key) => key,
            Err(resp) => return *resp,
        };
        let Some(artifact) = request.artifact else {
            return Response::error("register requires an artifact");
        };
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        if let Err(resp) = self.journal_append(
            inner,
            &JournalOp::Register {
                key: key.clone(),
                artifact: artifact.clone(),
            },
        ) {
            return *resp;
        }
        match self.install(inner, key.clone(), artifact) {
            Ok(batches_seen) => {
                let mut r = Response::ok();
                r.message = Some(format!("registered {key}"));
                r.batches_seen = Some(batches_seen);
                r
            }
            Err(message) => Response::error(message),
        }
    }

    /// Total in-flight chunks of a tenant: the chunk counts of every open
    /// window across the tenant's deployments. Derived from monitor state
    /// so it is exact after any save/restore cycle.
    fn tenant_pending(inner: &Inner, tenant: &str) -> u64 {
        inner
            .deployments
            .iter()
            .filter(|(key, _)| key.tenant == tenant)
            .filter_map(|(_, dep)| dep.monitor.window())
            .map(|window| window.chunks())
            .sum()
    }

    /// Deterministic retry-after for the `n`-th consecutive overflow:
    /// exponential in `n`, capped, with jitter in `[0.5, 1.5)` derived
    /// from `(jitter_seed, tenant, total sheds)` exactly like the
    /// resilience layer's backoff jitter.
    fn retry_after(&self, tenant: &str, consecutive: u32, sheds: u64) -> u64 {
        let exp = consecutive.saturating_sub(1).min(16);
        let raw = self
            .config
            .base_retry_nanos
            .saturating_mul(1u64 << exp)
            .min(self.config.max_retry_nanos);
        let mixed = mix64(
            self.config
                .jitter_seed
                .wrapping_add(tenant_hash(tenant))
                .wrapping_add(sheds),
        );
        let frac = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        ((raw as f64) * (0.5 + frac)) as u64
    }

    fn publish_gate(&self, tenant: &str, gate: &TenantGate, pending: u64) {
        self.registry
            .gauge(&format!("tenant.{tenant}.server.breaker_state"))
            .set(gate.state.gauge_value());
        self.registry
            .gauge(&format!("tenant.{tenant}.server.queue_depth"))
            .set(pending as f64);
    }

    fn note_shed(&self, tenant: &str) {
        self.metrics.shed.inc();
        self.registry
            .counter(&format!("tenant.{tenant}.server.shed_requests"))
            .inc();
    }

    fn observe(&self, request: Request) -> Response {
        let key = match Self::require_key(&request) {
            Ok(key) => key,
            Err(resp) => return *resp,
        };
        let now = self.clock.now_nanos();
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        if !inner.deployments.contains_key(&key) {
            return Response::error(format!("unknown deployment {key}"));
        }
        let mode_count = usize::from(request.outputs.is_some())
            + usize::from(request.chunk.is_some())
            + usize::from(request.estimate.is_some())
            + usize::from(request.interval.is_some());
        if mode_count != 1 {
            return Response::error(
                "observe requires exactly one of outputs, chunk, estimate or interval",
            );
        }

        // Breaker check first: an open breaker sheds every observe form.
        let gate = inner.tenants.entry(key.tenant.clone()).or_default();
        if gate.state == GateState::Open {
            let elapsed = now.saturating_sub(gate.opened_at_nanos);
            if elapsed < self.config.breaker.cooldown_nanos {
                let retry = self.config.breaker.cooldown_nanos - elapsed;
                gate.sheds += 1;
                let reason = format!(
                    "tenant '{}' circuit open: observe shed, retry in {retry} virtual ns",
                    key.tenant
                );
                let gate_snapshot = gate.clone();
                // Shed effects mutate monitor state, so they are WAL'd
                // like any other mutation — as their *effect*, with the
                // literal reason, so replay needs no gate state.
                let shed_op = if request.chunk.is_some() {
                    JournalOp::AbandonWindow {
                        key: key.clone(),
                        reason: reason.clone(),
                    }
                } else {
                    JournalOp::ObserveDegraded {
                        key: key.clone(),
                        reason: reason.clone(),
                    }
                };
                if let Err(resp) = self.journal_append(inner, &shed_op) {
                    return *resp;
                }
                let dep = inner.deployments.get_mut(&key).expect("checked above");
                let mut resp = Response::shed(retry, reason.clone());
                if request.chunk.is_some() {
                    // Degrade, never drop: the window the chunk belonged to
                    // must not finish as if it saw every chunk.
                    dep.monitor.abandon_window(reason);
                } else {
                    resp.report = Some(dep.monitor.observe_degraded(reason));
                }
                self.note_shed(&key.tenant);
                let pending = Self::tenant_pending(inner, &key.tenant);
                self.publish_gate(&key.tenant, &gate_snapshot, pending);
                resp.pending_chunks = Some(pending);
                return resp;
            }
            gate.state = GateState::HalfOpen;
            gate.half_open_successes = 0;
        }

        let response = if let Some(rows) = &request.outputs {
            self.observe_outputs(inner, &key, rows)
        } else if let Some(rows) = &request.chunk {
            self.observe_chunk(inner, &key, rows, now)
        } else if let Some(interval) = request.interval {
            // External intervals are validated by the monitor before they
            // touch any alarm state; a malformed interval is a hard error
            // that consumes no batch index (and its journaled record
            // replays into the same no-op).
            self.journal_append(
                inner,
                &JournalOp::ObserveInterval {
                    key: key.clone(),
                    interval,
                },
            )
            .and_then(|()| {
                let dep = inner.deployments.get_mut(&key).expect("checked above");
                match dep.monitor.observe_interval(interval) {
                    Ok(report) => {
                        let mut r = Response::ok();
                        r.batches_seen = Some(dep.monitor.batches_seen());
                        r.report = Some(report);
                        Ok(r)
                    }
                    Err(e) => Err(Box::new(Response::error(e.to_string()))),
                }
            })
        } else {
            let estimate = request.estimate.expect("mode checked above");
            self.journal_append(
                inner,
                &JournalOp::ObserveEstimate {
                    key: key.clone(),
                    estimate,
                },
            )
            .map(|()| {
                let dep = inner.deployments.get_mut(&key).expect("checked above");
                let report = dep.monitor.observe_estimate(estimate);
                let mut r = Response::ok();
                r.batches_seen = Some(dep.monitor.batches_seen());
                r.report = Some(report);
                r
            })
        };
        match response {
            Ok(mut resp) => {
                // An accepted observe is a success signal for the breaker.
                let gate = inner.tenants.entry(key.tenant.clone()).or_default();
                match gate.state {
                    GateState::Closed => gate.consecutive_overflows = 0,
                    GateState::HalfOpen => {
                        gate.half_open_successes += 1;
                        if gate.half_open_successes >= self.config.breaker.half_open_successes {
                            gate.state = GateState::Closed;
                            gate.consecutive_overflows = 0;
                        }
                    }
                    GateState::Open => {}
                }
                let gate_snapshot = gate.clone();
                let pending = Self::tenant_pending(inner, &key.tenant);
                self.publish_gate(&key.tenant, &gate_snapshot, pending);
                resp.pending_chunks = Some(pending);
                resp
            }
            Err(resp) => *resp,
        }
    }

    fn observe_outputs(
        &self,
        inner: &mut Inner,
        key: &MonitorKey,
        rows: &[Vec<f64>],
    ) -> Result<Response, Box<Response>> {
        // Shape validation happens before the WAL append so pure parse
        // errors (which mutate nothing) are not journaled at all.
        let proba = DenseMatrix::from_rows(rows)
            .map_err(|e| Box::new(Response::error(format!("bad outputs: {e}"))))?;
        self.journal_append(
            inner,
            &JournalOp::ObserveOutputs {
                key: key.clone(),
                rows: rows.to_vec(),
            },
        )?;
        let dep = inner.deployments.get_mut(key).expect("checked above");
        let report = dep
            .monitor
            .observe_outputs(&proba)
            .map_err(|e| Box::new(Response::error(e.to_string())))?;
        let mut r = Response::ok();
        r.batches_seen = Some(dep.monitor.batches_seen());
        r.report = Some(report);
        Ok(r)
    }

    fn observe_chunk(
        &self,
        inner: &mut Inner,
        key: &MonitorKey,
        rows: &[Vec<f64>],
        now: u64,
    ) -> Result<Response, Box<Response>> {
        let pending = Self::tenant_pending(inner, &key.tenant);
        if pending >= self.config.queue_capacity {
            let gate = inner.tenants.entry(key.tenant.clone()).or_default();
            gate.sheds += 1;
            match gate.state {
                GateState::Closed => {
                    gate.consecutive_overflows += 1;
                    if gate.consecutive_overflows >= self.config.breaker.failure_threshold {
                        gate.state = GateState::Open;
                        gate.opened_at_nanos = now;
                    }
                }
                GateState::HalfOpen => {
                    // A failed probe re-opens immediately.
                    gate.state = GateState::Open;
                    gate.opened_at_nanos = now;
                }
                GateState::Open => {}
            }
            let retry = self.retry_after(&key.tenant, gate.consecutive_overflows, gate.sheds);
            let gate_snapshot = gate.clone();
            let reason = format!(
                "tenant '{}' over its in-flight chunk budget ({pending}/{}): chunk shed",
                key.tenant, self.config.queue_capacity
            );
            // The shed is journaled as its *effect* (window abandonment),
            // so replay reproduces the degradation without reconstructing
            // ephemeral gate state.
            self.journal_append(
                inner,
                &JournalOp::AbandonWindow {
                    key: key.clone(),
                    reason: reason.clone(),
                },
            )?;
            let dep = inner.deployments.get_mut(key).expect("checked above");
            // Degrade, never drop: the shed chunk's window finishes
            // degraded instead of pretending it saw every chunk.
            dep.monitor.abandon_window(reason.clone());
            self.note_shed(&key.tenant);
            let pending = Self::tenant_pending(inner, &key.tenant);
            self.publish_gate(&key.tenant, &gate_snapshot, pending);
            let mut resp = Response::shed(retry, reason);
            resp.pending_chunks = Some(pending);
            return Err(Box::new(resp));
        }
        // Validate shape and class count before the WAL append so pure
        // parse errors (which mutate nothing) are not journaled at all.
        let proba = DenseMatrix::from_rows(rows)
            .map_err(|e| Box::new(Response::error(format!("bad chunk: {e}"))))?;
        let n_classes = inner
            .deployments
            .get(key)
            .expect("checked above")
            .monitor
            .predictor()
            .n_classes();
        if proba.rows() > 0 && proba.cols() != n_classes {
            return Err(Box::new(Response::error(format!(
                "chunk has {} columns but {key} serves {n_classes} classes",
                proba.cols(),
            ))));
        }
        self.journal_append(
            inner,
            &JournalOp::ObserveChunk {
                key: key.clone(),
                rows: rows.to_vec(),
            },
        )?;
        let dep = inner.deployments.get_mut(key).expect("checked above");
        dep.monitor
            .observe_output_chunk(&proba)
            .map_err(|e| Box::new(Response::error(e.to_string())))?;
        let mut r = Response::ok();
        r.batches_seen = Some(dep.monitor.batches_seen());
        Ok(r)
    }

    fn finish(&self, request: Request) -> Response {
        let key = match Self::require_key(&request) {
            Ok(key) => key,
            Err(resp) => return *resp,
        };
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        if !inner.deployments.contains_key(&key) {
            return Response::error(format!("unknown deployment {key}"));
        }
        // Journaled even when no window is open: the live error below is a
        // no-op on monitor state, and replaying it reproduces the same
        // no-op error, keeping replay bit-identical without peeking into
        // window state here.
        if let Err(resp) = self.journal_append(inner, &JournalOp::Finish { key: key.clone() }) {
            return *resp;
        }
        let dep = inner.deployments.get_mut(&key).expect("checked above");
        let result = dep.monitor.finish_window();
        let batches_seen = dep.monitor.batches_seen();
        let gate_snapshot = inner.tenants.entry(key.tenant.clone()).or_default().clone();
        let pending = Self::tenant_pending(inner, &key.tenant);
        self.publish_gate(&key.tenant, &gate_snapshot, pending);
        match result {
            Ok(report) => {
                let mut r = Response::ok();
                r.report = Some(report);
                r.batches_seen = Some(batches_seen);
                r.pending_chunks = Some(pending);
                r
            }
            Err(e) => Response::error(e.to_string()),
        }
    }

    fn history(&self, request: Request) -> Response {
        let key = match Self::require_key(&request) {
            Ok(key) => key,
            Err(resp) => return *resp,
        };
        let inner = self.lock_inner();
        let Some(dep) = inner.deployments.get(&key) else {
            return Response::error(format!("unknown deployment {key}"));
        };
        let reports = dep.monitor.history();
        let offset = request.offset.unwrap_or(0);
        let limit = request.limit.unwrap_or(reports.len());
        let mut r = Response::ok();
        r.history = Some(reports.iter().skip(offset).take(limit).cloned().collect());
        r.batches_seen = Some(dep.monitor.batches_seen());
        r
    }

    fn metrics(&self) -> Response {
        let mut r = Response::ok();
        r.metrics = Some(self.registry.snapshot().deterministic());
        r
    }

    fn list(&self) -> Response {
        let inner = self.lock_inner();
        let mut r = Response::ok();
        r.deployments = Some(inner.deployments.keys().cloned().collect());
        r
    }

    /// Snapshot of the registry contents, for embedding and tests. Pure
    /// content — `journal_epoch` is `None`, so two daemons holding the
    /// same monitor state snapshot identically regardless of how many
    /// compactions each has been through.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.lock_inner();
        Self::snapshot_locked(&inner, None)
    }

    fn snapshot_locked(inner: &Inner, journal_epoch: Option<u64>) -> RegistrySnapshot {
        RegistrySnapshot {
            version: ARTIFACT_VERSION,
            journal_epoch,
            deployments: inner
                .deployments
                .iter()
                .map(|(key, dep)| DeploymentEntry {
                    key: key.clone(),
                    artifact: ServingArtifact::from_monitor(&dep.monitor),
                })
                .collect(),
        }
    }

    /// Writes the registry to `path` (enveloped, atomic, durable).
    ///
    /// A save to the *configured* snapshot path additionally compacts the
    /// write-ahead journal: the snapshot records `epoch + 1`, and once it
    /// is durable the journal is truncated and moves to the new epoch. A
    /// crash between those two steps leaves old-epoch records in the
    /// journal that recovery recognizes as stale and skips — the crash
    /// window double-applies nothing. A save to any *other* path is a
    /// plain export (`journal_epoch: None`) that restores standalone via
    /// [`DaemonConfig::with_state_file`] without consuming this daemon's
    /// journal.
    pub fn save_to(&self, path: &Path) -> Result<String, String> {
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let compacting =
            inner.journal.is_some() && self.durability.snapshot_path.as_deref() == Some(path);
        let journal_epoch = compacting.then(|| {
            inner
                .journal
                .as_ref()
                .expect("compacting implies a journal")
                .next_epoch()
        });
        let snapshot = Self::snapshot_locked(inner, journal_epoch);
        save_json(&snapshot, path).map_err(|e| e.to_string())?;
        if let Some(epoch) = journal_epoch {
            let journal = inner
                .journal
                .as_mut()
                .expect("compacting implies a journal");
            journal.compact_to_epoch(epoch).map_err(|e| {
                format!(
                    "snapshot saved to {} but journal compaction failed: {e}",
                    path.display()
                )
            })?;
            self.metrics.journal_compactions.inc();
        }
        Ok(format!(
            "saved {} deployments to {}{}",
            snapshot.deployments.len(),
            path.display(),
            if compacting {
                " (journal compacted)"
            } else {
                ""
            },
        ))
    }

    fn save(&self, request: Request) -> Response {
        let Some(path) = request.path else {
            return Response::error("save requires a path");
        };
        match self.save_to(Path::new(&path)) {
            Ok(message) => {
                let mut r = Response::ok();
                r.message = Some(message);
                r
            }
            Err(e) => Response::error(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use lvp_core::{MonitorPolicy, PerformancePredictor, PredictorConfig};
    use lvp_corruptions::standard_tabular_suite;
    use lvp_dataframe::toy_frame;
    use lvp_models::train_logistic_regression;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn artifact() -> ServingArtifact {
        let df = toy_frame(220);
        let mut rng = StdRng::seed_from_u64(17);
        let (train, rest) = df.split_frac(0.4, &mut rng);
        let (test, _serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        let monitor = BatchMonitor::new(predictor, MonitorPolicy::default()).unwrap();
        ServingArtifact::from_monitor(&monitor)
    }

    fn key(tenant: &str) -> MonitorKey {
        MonitorKey {
            tenant: tenant.to_string(),
            model: "fraud".to_string(),
            version: "v1".to_string(),
        }
    }

    fn register(daemon: &Daemon, key: &MonitorKey, artifact: ServingArtifact) {
        let mut req = Request::targeted("register", key);
        req.artifact = Some(artifact);
        let resp = daemon.handle_request(req);
        assert!(resp.is_ok(), "register failed: {:?}", resp.message);
    }

    fn chunk_rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let p = 0.2 + 0.6 * (i as f64 / n.max(1) as f64);
                vec![p, 1.0 - p]
            })
            .collect()
    }

    #[test]
    fn register_observe_finish_history_round_trip() {
        let daemon = Daemon::new(DaemonConfig::default());
        let k = key("acme");
        register(&daemon, &k, artifact());

        let mut req = Request::targeted("observe", &k);
        req.estimate = Some(0.81);
        let resp = daemon.handle_request(req);
        assert!(resp.is_ok());
        assert_eq!(resp.batches_seen, Some(1));
        assert!(resp.report.unwrap().estimate.is_finite());

        for _ in 0..2 {
            let mut req = Request::targeted("observe", &k);
            req.chunk = Some(chunk_rows(16));
            let resp = daemon.handle_request(req);
            assert!(resp.is_ok(), "chunk rejected: {:?}", resp.message);
        }
        let resp = daemon.handle_request(Request::targeted("finish", &k));
        assert!(resp.is_ok(), "finish failed: {:?}", resp.message);
        let report = resp.report.unwrap();
        assert!(report.estimate.is_finite() && !report.degraded);
        assert_eq!(resp.pending_chunks, Some(0));

        let mut req = Request::targeted("history", &k);
        req.limit = Some(1);
        req.offset = Some(1);
        let resp = daemon.handle_request(req);
        let history = resp.history.unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].batch_index, 1);

        let resp = daemon.handle_request(Request::new("list"));
        assert_eq!(resp.deployments.unwrap(), vec![k]);
        assert!(daemon
            .handle_request(Request::new("metrics"))
            .metrics
            .is_some());
    }

    #[test]
    fn overflow_sheds_trip_the_breaker_and_cooldown_recovers() {
        let config = DaemonConfig {
            queue_capacity: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_nanos: 2_000_000, // two request ticks
                half_open_successes: 2,
            },
            ..DaemonConfig::default()
        };
        let daemon = Daemon::new(config);
        let k = key("noisy");
        register(&daemon, &k, artifact());

        let chunk = |daemon: &Daemon| {
            let mut req = Request::targeted("observe", &k);
            req.chunk = Some(chunk_rows(8));
            daemon.handle_request(req)
        };

        assert!(chunk(&daemon).is_ok()); // pending: 1 == capacity
        let shed = chunk(&daemon);
        assert!(shed.is_shed());
        assert!(shed.retry_after_nanos.unwrap() > 0);
        assert_eq!(daemon.tenant_circuit("noisy"), CircuitState::Closed);

        let shed = chunk(&daemon); // second consecutive overflow trips it
        assert!(shed.is_shed());
        assert_eq!(daemon.tenant_circuit("noisy"), CircuitState::Open);

        // Open breaker sheds even estimate observes, recording the loss as
        // a degraded batch (never dropping it).
        let mut req = Request::targeted("observe", &k);
        req.estimate = Some(0.8);
        let resp = daemon.handle_request(req);
        assert!(resp.is_shed());
        let degraded = resp.report.unwrap();
        assert!(degraded.estimate.is_nan());
        assert!(degraded.degrade_reason.unwrap().contains("circuit open"));

        // The poisoned window still finishes (degraded), freeing the budget.
        let resp = daemon.handle_request(Request::targeted("finish", &k));
        assert!(resp.is_ok());
        assert!(resp
            .report
            .unwrap()
            .degrade_reason
            .unwrap()
            .contains("budget"));
        assert_eq!(resp.pending_chunks, Some(0));

        // Cooldown has elapsed on the virtual clock; two successful probes
        // close the breaker.
        for expected in [CircuitState::HalfOpen, CircuitState::Closed] {
            let mut req = Request::targeted("observe", &k);
            req.estimate = Some(0.8);
            assert!(daemon.handle_request(req).is_ok());
            assert_eq!(daemon.tenant_circuit("noisy"), expected);
        }
        assert!(chunk(&daemon).is_ok());
    }

    #[test]
    fn malformed_and_invalid_requests_answer_with_errors() {
        let daemon = Daemon::new(DaemonConfig::default());
        let resp: Response = serde_json::from_str(&daemon.handle_line("{ not json")).unwrap();
        assert_eq!(resp.status, "error");
        assert!(daemon.handle_request(Request::new("frobnicate")).status == "error");

        let k = key("ghost");
        let mut req = Request::targeted("observe", &k);
        req.estimate = Some(0.5);
        let resp = daemon.handle_request(req);
        assert!(resp.message.unwrap().contains("unknown deployment"));

        register(&daemon, &k, artifact());
        // No mode at all, then two modes at once: both rejected.
        let resp = daemon.handle_request(Request::targeted("observe", &k));
        assert!(resp.message.unwrap().contains("exactly one"));
        let mut req = Request::targeted("observe", &k);
        req.estimate = Some(0.5);
        req.chunk = Some(chunk_rows(4));
        let resp = daemon.handle_request(req);
        assert!(resp.message.unwrap().contains("exactly one"));

        // Mis-shaped chunk: column count must match the class count.
        let mut req = Request::targeted("observe", &k);
        req.chunk = Some(vec![vec![0.2, 0.3, 0.5]]);
        let resp = daemon.handle_request(req);
        assert!(resp.message.unwrap().contains("classes"));
    }

    #[test]
    fn registry_snapshot_restores_bit_identically() {
        let dir = std::env::temp_dir().join(format!("lvpd-daemon-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let first = dir.join("registry-a.json");
        let second = dir.join("registry-b.json");

        let daemon = Daemon::new(DaemonConfig::default());
        register(&daemon, &key("acme"), artifact());
        register(&daemon, &key("bravo"), artifact());
        let mut req = Request::targeted("observe", &key("acme"));
        req.estimate = Some(0.77);
        daemon.handle_request(req);
        // Leave an open in-flight window: it must survive the restart.
        let mut req = Request::targeted("observe", &key("bravo"));
        req.chunk = Some(chunk_rows(12));
        assert!(daemon.handle_request(req).is_ok());

        let mut req = Request::new("save");
        req.path = Some(first.to_string_lossy().into_owned());
        assert!(daemon.handle_request(req).is_ok());

        let restored = Daemon::with_state_file(DaemonConfig::default(), &first).unwrap();
        let mut req = Request::new("save");
        req.path = Some(second.to_string_lossy().into_owned());
        assert!(restored.handle_request(req).is_ok());
        assert_eq!(
            std::fs::read(&first).unwrap(),
            std::fs::read(&second).unwrap(),
            "registry snapshot must round-trip bit-identically"
        );

        // The restored in-flight window still finishes into a real report.
        let resp = restored.handle_request(Request::targeted("finish", &key("bravo")));
        assert!(resp.is_ok(), "finish after restore: {:?}", resp.message);
        assert!(resp.report.unwrap().estimate.is_finite());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
