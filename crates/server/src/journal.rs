//! The lvpd write-ahead observe journal: checksummed, length-prefixed
//! records of every accepted state-mutating request, appended *before*
//! the mutation is applied.
//!
//! ## Why a journal
//!
//! Registry snapshots are only as fresh as the last `save`; every
//! `observe`/`finish`/`register` accepted since is monitor state that a
//! daemon crash would silently lose. Monitors are deterministic, so the
//! journal makes them recoverable: replaying the journal tail over the
//! last snapshot reproduces the pre-crash registry **bit-identically**.
//!
//! ## Record framing
//!
//! Each record is a binary frame over a JSON payload:
//!
//! ```text
//! [magic "LVJR" (4)] [payload len: u32 LE (4)] [FNV-1a64: u64 LE (8)] [payload]
//! ```
//!
//! The payload is a [`JournalRecord`] — a compaction epoch plus one
//! [`JournalOp`]. The frame makes every tail defect detectable and
//! classifiable ([`JournalDefect`]): a torn header or torn payload is a
//! crash mid-append, a checksum mismatch is bit rot, a bad magic is a
//! misaligned or foreign write. [`scan_journal`] walks frames until the
//! first defect and reports the last durable prefix — recovery truncates
//! to it and replays what survived; it never panics and never feeds serde
//! a corrupt payload.
//!
//! ## Epochs
//!
//! Compaction (an explicit or shutdown `save`) bumps the journal epoch,
//! writes the snapshot recording the new epoch, *then* truncates the
//! journal. A crash between those steps leaves stale-epoch records in the
//! journal; replay skips any record whose epoch predates the snapshot's,
//! so compaction has no window in which a crash double-applies or loses
//! operations.
//!
//! ## Fault injection
//!
//! [`FaultFile`] wraps any [`JournalSink`] with a seeded
//! [`JournalFaultPlan`] that tears writes (a prefix lands on disk, then
//! the "process dies") or flips a bit silently at deterministic offsets —
//! the same philosophy as the PR 5 model-serving fault injection, extended
//! to the filesystem. Property tests crash-recover at every record
//! boundary under these faults.

use crate::protocol::MonitorKey;
use lvp_core::{checksum64, ScoreInterval, ServingArtifact};
use lvp_models::mix64;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;

/// Magic bytes opening every journal record frame.
pub const RECORD_MAGIC: [u8; 4] = *b"LVJR";

/// Frame header size: magic + payload length (u32 LE) + checksum (u64 LE).
pub const RECORD_HEADER_LEN: usize = 16;

/// One state-mutating operation, journaled before it is applied. Shed
/// decisions are journaled as their *effects* ([`JournalOp::AbandonWindow`],
/// [`JournalOp::ObserveDegraded`], with the literal reason string), so
/// replay reproduces the monitor state without needing the ephemeral
/// admission-gate state that produced the decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
// `Register` carries a whole `ServingArtifact` and dwarfs the other
// variants, but ops are journaled and replayed by reference/once — boxing
// the artifact would complicate the (vendored) serde derive for no win.
#[allow(clippy::large_enum_variant)]
pub enum JournalOp {
    /// A deployment was (re)installed.
    Register {
        /// Registry key.
        key: MonitorKey,
        /// The installed bundle.
        artifact: ServingArtifact,
    },
    /// A full batch of model output rows was scored.
    ObserveOutputs {
        /// Registry key.
        key: MonitorKey,
        /// The batch (n × classes).
        rows: Vec<Vec<f64>>,
    },
    /// A chunk was folded into the open streaming window.
    ObserveChunk {
        /// Registry key.
        key: MonitorKey,
        /// The chunk rows.
        rows: Vec<Vec<f64>>,
    },
    /// An external score estimate was recorded.
    ObserveEstimate {
        /// Registry key.
        key: MonitorKey,
        /// The estimate.
        estimate: f64,
    },
    /// An external score interval was recorded.
    ObserveInterval {
        /// Registry key.
        key: MonitorKey,
        /// The interval.
        interval: ScoreInterval,
    },
    /// The open streaming window was finished into a report.
    Finish {
        /// Registry key.
        key: MonitorKey,
    },
    /// The open streaming window was poisoned by a shed chunk.
    AbandonWindow {
        /// Registry key.
        key: MonitorKey,
        /// The literal degrade reason recorded at decision time.
        reason: String,
    },
    /// A shed non-chunk observe was recorded as a degraded batch.
    ObserveDegraded {
        /// Registry key.
        key: MonitorKey,
        /// The literal degrade reason recorded at decision time.
        reason: String,
    },
}

/// One journal record: a compaction epoch plus the operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Compaction epoch the record belongs to (see the module docs).
    pub epoch: u64,
    /// The journaled operation.
    pub op: JournalOp,
}

/// Encodes one record into its binary frame.
pub fn encode_record(record: &JournalRecord) -> Result<Vec<u8>, String> {
    let payload = serde_json::to_string(record)
        .map_err(|e| format!("encode journal record: {e}"))?
        .into_bytes();
    let len = u32::try_from(payload.len()).map_err(|_| {
        format!(
            "journal record payload of {} bytes overflows u32",
            payload.len()
        )
    })?;
    let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    frame.extend_from_slice(&RECORD_MAGIC);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&checksum64(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Classification of the first defect found while scanning a journal.
/// Every variant means the same thing operationally — the journal is
/// valid up to [`JournalScan::valid_len`] and unusable past it — but they
/// distinguish *how* the tail died, which telemetry and operators care
/// about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalDefect {
    /// The tail is shorter than a record header: a crash mid-append.
    TornHeader,
    /// The tail header is whole but the payload ends early: a crash
    /// mid-append.
    TornPayload,
    /// A payload does not match its recorded checksum: bit rot, or a torn
    /// overwrite inside the payload.
    ChecksumMismatch,
    /// The bytes at a record boundary do not start with the record magic:
    /// a misaligned or foreign write.
    BadMagic,
    /// The payload passed its checksum but is not a parsable record —
    /// e.g. written by an incompatible future version.
    Malformed,
}

impl std::fmt::Display for JournalDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JournalDefect::TornHeader => "torn record header",
            JournalDefect::TornPayload => "torn record payload",
            JournalDefect::ChecksumMismatch => "record checksum mismatch",
            JournalDefect::BadMagic => "bad record magic",
            JournalDefect::Malformed => "unparsable record payload",
        };
        f.write_str(s)
    }
}

/// The result of [`scan_journal`]: every record in the valid prefix, how
/// long that prefix is, and what (if anything) killed the tail.
#[derive(Debug, Clone)]
pub struct JournalScan {
    /// Records decoded from the valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (equals the input length when the
    /// journal is defect-free). Recovery truncates the file to this.
    pub valid_len: usize,
    /// The first defect, if the tail is damaged.
    pub defect: Option<JournalDefect>,
}

/// Walks a journal byte-by-byte, decoding frames until the bytes run out
/// or the first defect. Never panics, never returns partially-checked
/// payloads: a record is only surfaced once its magic, length, checksum
/// and JSON all verified.
pub fn scan_journal(bytes: &[u8]) -> JournalScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let defect = loop {
        if offset == bytes.len() {
            break None;
        }
        let rest = &bytes[offset..];
        if rest.len() < RECORD_HEADER_LEN {
            break Some(if rest.starts_with(&RECORD_MAGIC[..rest.len().min(4)]) {
                JournalDefect::TornHeader
            } else {
                JournalDefect::BadMagic
            });
        }
        if rest[..4] != RECORD_MAGIC {
            break Some(JournalDefect::BadMagic);
        }
        let len = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes")) as usize;
        let declared_sum = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        let Some(payload) = rest.get(RECORD_HEADER_LEN..RECORD_HEADER_LEN + len) else {
            break Some(JournalDefect::TornPayload);
        };
        if checksum64(payload) != declared_sum {
            break Some(JournalDefect::ChecksumMismatch);
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break Some(JournalDefect::Malformed);
        };
        let Ok(record) = serde_json::from_str::<JournalRecord>(text) else {
            break Some(JournalDefect::Malformed);
        };
        records.push(record);
        offset += RECORD_HEADER_LEN + len;
    };
    JournalScan {
        records,
        valid_len: offset,
        defect,
    }
}

/// When the journal fsyncs.
///
/// `Always` makes every accepted request durable before it is applied or
/// acknowledged — the strongest guarantee and the slowest. `EveryN(n)`
/// fsyncs every `n`-th append, bounding loss to the last `n - 1` accepted
/// requests. `Never` leaves flushing to the OS page cache: a *process*
/// crash loses nothing that reached `write(2)`, but a power cut can lose
/// the un-flushed tail — which the checksummed framing then detects and
/// truncates rather than misparses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every append.
    #[default]
    Always,
    /// fsync after every `n`-th append (`EveryN(1)` ≡ `Always`).
    EveryN(u64),
    /// Never fsync explicitly.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag forms: `always`, `never`, `every:N`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("every:").map(str::parse::<u64>) {
                Some(Ok(n)) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!(
                    "bad fsync policy '{other}' (expected always, never or every:N)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => f.write_str("always"),
            FsyncPolicy::EveryN(n) => write!(f, "every:{n}"),
            FsyncPolicy::Never => f.write_str("never"),
        }
    }
}

/// Where journal frames land. The daemon only needs append/sync/reset;
/// abstracting them lets tests swap in in-memory sinks and the
/// fault-injection wrapper without touching the journal logic.
pub trait JournalSink: Send {
    /// Appends `bytes` at the end of the journal.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Makes everything appended so far durable.
    fn sync(&mut self) -> io::Result<()>;
    /// Truncates the journal to `len` bytes (`0` = compaction; a frame
    /// boundary = repair after a torn append).
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

impl JournalSink for Box<dyn JournalSink> {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        (**self).append(bytes)
    }
    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        (**self).truncate(len)
    }
}

/// A [`JournalSink`] over a real append-mode file.
pub struct FileSink {
    file: std::fs::File,
}

impl FileSink {
    /// Opens (creating if absent) `path` for appending.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self { file })
    }
}

impl JournalSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        // The file is in append mode, so later writes land at the (new)
        // end regardless of any cursor position.
        self.file.set_len(len)
    }
}

/// An in-memory [`JournalSink`] for tests: the buffer is shared, so a
/// clone of the handle inspects what the journal wrote.
#[derive(Clone, Default)]
pub struct MemorySink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything appended so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl JournalSink for MemorySink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend_from_slice(bytes);
        Ok(())
    }
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .truncate(usize::try_from(len).unwrap_or(usize::MAX));
        Ok(())
    }
}

/// A seeded plan of filesystem faults to inject through [`FaultFile`] —
/// the journal-side sibling of the PR 5 model-serving `FaultPlan`.
/// Append indices count from 0; faults fire when
/// `mix64(seed ^ index) % period == 0` for the configured period, so a
/// given (seed, plan) pair always damages the same appends at the same
/// offsets, and every failure a test observes is replayable.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalFaultPlan {
    /// Seed mixed into every per-append decision.
    pub seed: u64,
    /// Tear roughly one in `period` appends: a seeded prefix of the frame
    /// reaches the sink, then the append fails like a crashed process
    /// (`Other` I/O error). `None` disables tearing.
    pub torn_write_period: Option<u64>,
    /// Silently flip one seeded bit in roughly one in `period` appends
    /// (the append *succeeds* — only the recovery-time checksum can catch
    /// it). `None` disables flips.
    pub bit_flip_period: Option<u64>,
}

impl JournalFaultPlan {
    /// A plan that never fires.
    pub fn none() -> Self {
        Self::default()
    }

    fn fires(&self, period: Option<u64>, salt: u64, index: u64) -> bool {
        match period {
            Some(p) if p > 0 => mix64(self.seed ^ salt ^ index).is_multiple_of(p),
            _ => false,
        }
    }
}

/// A [`JournalSink`] wrapper that injects the faults of a
/// [`JournalFaultPlan`] into an inner sink.
pub struct FaultFile<S: JournalSink> {
    inner: S,
    plan: JournalFaultPlan,
    appends: u64,
    torn_writes: u64,
    bit_flips: u64,
}

impl<S: JournalSink> FaultFile<S> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: S, plan: JournalFaultPlan) -> Self {
        Self {
            inner,
            plan,
            appends: 0,
            torn_writes: 0,
            bit_flips: 0,
        }
    }

    /// Faults injected so far: `(torn writes, bit flips)`.
    pub fn injected(&self) -> (u64, u64) {
        (self.torn_writes, self.bit_flips)
    }
}

impl<S: JournalSink> JournalSink for FaultFile<S> {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let index = self.appends;
        self.appends += 1;
        if self.plan.fires(self.plan.torn_write_period, 0x7011, index) && !bytes.is_empty() {
            // A crash mid-append: some prefix made it to disk, the rest —
            // and the acknowledgement — did not.
            let keep = (mix64(self.plan.seed ^ 0xCAFE ^ index) as usize) % bytes.len();
            self.inner.append(&bytes[..keep])?;
            self.torn_writes += 1;
            return Err(io::Error::other(format!(
                "injected torn write: {keep} of {} bytes persisted",
                bytes.len()
            )));
        }
        if self.plan.fires(self.plan.bit_flip_period, 0xF11B, index) && !bytes.is_empty() {
            // Silent corruption: the write "succeeds", one bit lies.
            let mut damaged = bytes.to_vec();
            let bit = (mix64(self.plan.seed ^ 0xB17 ^ index) as usize) % (damaged.len() * 8);
            damaged[bit / 8] ^= 1 << (bit % 8);
            self.bit_flips += 1;
            return self.inner.append(&damaged);
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }
}

/// The write-ahead journal: frames records, enforces the fsync policy,
/// and tracks the compaction epoch. Owned by the daemon's state mutex so
/// append order is exactly application order.
///
/// A failed append leaves an unknown prefix of the frame on disk; the
/// journal repairs by truncating back to the last durable frame boundary.
/// If even the repair fails, the journal goes **poisoned** — every later
/// append is refused — so the daemon fails stop (rejecting mutations)
/// rather than diverging from what recovery would replay.
pub struct Journal {
    sink: Box<dyn JournalSink>,
    policy: FsyncPolicy,
    epoch: u64,
    durable_bytes: u64,
    appends_since_sync: u64,
    records_appended: u64,
    poisoned: bool,
}

impl Journal {
    /// A journal writing frames to an empty `sink` starting at `epoch`.
    pub fn new(sink: Box<dyn JournalSink>, policy: FsyncPolicy, epoch: u64) -> Self {
        Self {
            sink,
            policy,
            epoch,
            durable_bytes: 0,
            appends_since_sync: 0,
            records_appended: 0,
            poisoned: false,
        }
    }

    /// A journal appending to the file at `path` (created if absent). The
    /// caller (recovery) must already have truncated the file to its last
    /// valid record boundary.
    pub fn open(path: impl AsRef<Path>, policy: FsyncPolicy, epoch: u64) -> io::Result<Self> {
        let path = path.as_ref();
        let durable_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let mut journal = Self::new(Box::new(FileSink::open(path)?), policy, epoch);
        journal.durable_bytes = durable_bytes;
        Ok(journal)
    }

    /// The current compaction epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records appended over this journal's lifetime.
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Whether the journal has failed stop (see the type docs).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Wraps the current sink (e.g. in a [`FaultFile`]) — test plumbing
    /// for injecting filesystem faults under a live daemon.
    pub fn wrap_sink(&mut self, wrap: impl FnOnce(Box<dyn JournalSink>) -> Box<dyn JournalSink>) {
        // Replace with a throwaway memory sink while the wrapper is built.
        let sink = std::mem::replace(&mut self.sink, Box::new(MemorySink::new()));
        self.sink = wrap(sink);
    }

    /// Appends one operation at the current epoch, fsyncing per policy.
    /// Returns the fsync duration in nanoseconds when one ran. On error
    /// nothing was made durable — the caller rejects the request *without
    /// applying it*, preserving the write-ahead invariant — and the torn
    /// frame has been truncated away (or the journal poisoned).
    pub fn append(&mut self, op: &JournalOp) -> io::Result<Option<u64>> {
        if self.poisoned {
            return Err(io::Error::other(
                "journal is poisoned by an unrepaired append failure",
            ));
        }
        let record = JournalRecord {
            epoch: self.epoch,
            op: op.clone(),
        };
        let frame = encode_record(&record).map_err(io::Error::other)?;
        if let Err(e) = self.sink.append(&frame) {
            // An unknown prefix of the frame may have landed; cut back to
            // the last durable frame boundary so the on-disk journal and
            // the in-memory registry stay in lockstep.
            if self.sink.truncate(self.durable_bytes).is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.durable_bytes += frame.len() as u64;
        self.records_appended += 1;
        self.appends_since_sync += 1;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if !due {
            return Ok(None);
        }
        let start = std::time::Instant::now();
        self.sink.sync()?;
        self.appends_since_sync = 0;
        Ok(Some(
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        ))
    }

    /// Forces an fsync regardless of policy (shutdown flush).
    pub fn flush(&mut self) -> io::Result<()> {
        self.appends_since_sync = 0;
        self.sink.sync()
    }

    /// The epoch a compacting save will record.
    pub fn next_epoch(&self) -> u64 {
        self.epoch + 1
    }

    /// Compacts: adopts the new epoch and truncates the journal. The
    /// caller must have *already durably written* a snapshot recording
    /// `epoch` — that ordering is what makes a crash between snapshot and
    /// truncation safe (leftover records carry the old epoch and are
    /// skipped as stale on replay).
    pub fn compact_to_epoch(&mut self, epoch: u64) -> io::Result<()> {
        self.epoch = epoch;
        self.appends_since_sync = 0;
        self.durable_bytes = 0;
        self.sink.truncate(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MonitorKey {
        MonitorKey {
            tenant: "acme".into(),
            model: "fraud".into(),
            version: "v1".into(),
        }
    }

    fn estimate_op(v: f64) -> JournalOp {
        JournalOp::ObserveEstimate {
            key: key(),
            estimate: v,
        }
    }

    #[test]
    fn records_round_trip_through_the_frame() {
        let ops = vec![
            estimate_op(0.5),
            JournalOp::Finish { key: key() },
            JournalOp::AbandonWindow {
                key: key(),
                reason: "tenant 'acme' over budget".into(),
            },
            JournalOp::ObserveChunk {
                key: key(),
                rows: vec![vec![0.25, 0.75], vec![0.5, 0.5]],
            },
        ];
        let mut bytes = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            bytes.extend_from_slice(
                &encode_record(&JournalRecord {
                    epoch: i as u64,
                    op: op.clone(),
                })
                .unwrap(),
            );
        }
        let scan = scan_journal(&bytes);
        assert!(scan.defect.is_none());
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.records.len(), ops.len());
        for (i, record) in scan.records.iter().enumerate() {
            assert_eq!(record.epoch, i as u64);
            assert_eq!(
                serde_json::to_string(&record.op).unwrap(),
                serde_json::to_string(&ops[i]).unwrap()
            );
        }
    }

    #[test]
    fn scan_classifies_every_tail_defect() {
        let frame = encode_record(&JournalRecord {
            epoch: 0,
            op: estimate_op(0.25),
        })
        .unwrap();
        let two = {
            let mut b = frame.clone();
            b.extend_from_slice(&frame);
            b
        };

        // Torn header: second frame cut inside its header.
        let scan = scan_journal(&two[..frame.len() + 7]);
        assert_eq!(scan.defect, Some(JournalDefect::TornHeader));
        assert_eq!((scan.records.len(), scan.valid_len), (1, frame.len()));

        // Torn payload: second frame cut inside its payload.
        let scan = scan_journal(&two[..frame.len() + RECORD_HEADER_LEN + 3]);
        assert_eq!(scan.defect, Some(JournalDefect::TornPayload));
        assert_eq!((scan.records.len(), scan.valid_len), (1, frame.len()));

        // Bit flip in the second payload: checksum mismatch.
        let mut flipped = two.clone();
        let idx = frame.len() + RECORD_HEADER_LEN + 5;
        flipped[idx] ^= 0x20;
        let scan = scan_journal(&flipped);
        assert_eq!(scan.defect, Some(JournalDefect::ChecksumMismatch));
        assert_eq!((scan.records.len(), scan.valid_len), (1, frame.len()));

        // Garbage at a record boundary: bad magic.
        let mut garbage = frame.clone();
        garbage.extend_from_slice(b"this is not a journal record at all");
        let scan = scan_journal(&garbage);
        assert_eq!(scan.defect, Some(JournalDefect::BadMagic));
        assert_eq!((scan.records.len(), scan.valid_len), (1, frame.len()));

        // Valid frame over a non-record payload: malformed.
        let payload = b"{\"not\": \"a record\"}";
        let mut fake = Vec::new();
        fake.extend_from_slice(&RECORD_MAGIC);
        fake.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        fake.extend_from_slice(&checksum64(payload).to_le_bytes());
        fake.extend_from_slice(payload);
        let scan = scan_journal(&fake);
        assert_eq!(scan.defect, Some(JournalDefect::Malformed));
        assert_eq!((scan.records.len(), scan.valid_len), (0, 0));

        // Empty journal: clean.
        let scan = scan_journal(&[]);
        assert!(scan.defect.is_none() && scan.records.is_empty());
    }

    #[test]
    fn fsync_policy_parses_and_schedules() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("every:3").unwrap(),
            FsyncPolicy::EveryN(3)
        );
        assert!(FsyncPolicy::parse("every:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::EveryN(3).to_string(), "every:3");

        let mut journal = Journal::new(Box::new(MemorySink::new()), FsyncPolicy::EveryN(3), 0);
        let synced: Vec<bool> = (0..6)
            .map(|i| journal.append(&estimate_op(i as f64)).unwrap().is_some())
            .collect();
        assert_eq!(synced, vec![false, false, true, false, false, true]);
        let mut journal = Journal::new(Box::new(MemorySink::new()), FsyncPolicy::Always, 0);
        assert!(journal.append(&estimate_op(0.5)).unwrap().is_some());
        let mut journal = Journal::new(Box::new(MemorySink::new()), FsyncPolicy::Never, 0);
        assert!(journal.append(&estimate_op(0.5)).unwrap().is_none());
    }

    #[test]
    fn compaction_bumps_epoch_and_truncates() {
        let sink = MemorySink::new();
        let handle = sink.clone();
        let mut journal = Journal::new(Box::new(sink), FsyncPolicy::Never, 0);
        journal.append(&estimate_op(0.1)).unwrap();
        journal.append(&estimate_op(0.2)).unwrap();
        assert!(!handle.contents().is_empty());

        let next = journal.next_epoch();
        journal.compact_to_epoch(next).unwrap();
        assert!(handle.contents().is_empty());
        assert_eq!(journal.epoch(), 1);
        journal.append(&estimate_op(0.3)).unwrap();
        let scan = scan_journal(&handle.contents());
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].epoch, 1);
    }

    #[test]
    fn journal_poisons_when_torn_append_repair_fails() {
        // A sink where both the append and the repair truncate fail —
        // e.g. the disk fell out from under the daemon.
        struct DeadSink;
        impl JournalSink for DeadSink {
            fn append(&mut self, _bytes: &[u8]) -> io::Result<()> {
                Err(io::Error::other("dead"))
            }
            fn sync(&mut self) -> io::Result<()> {
                Err(io::Error::other("dead"))
            }
            fn truncate(&mut self, _len: u64) -> io::Result<()> {
                Err(io::Error::other("dead"))
            }
        }
        let mut journal = Journal::new(Box::new(DeadSink), FsyncPolicy::Never, 0);
        assert!(!journal.is_poisoned());
        assert!(journal.append(&estimate_op(0.5)).is_err());
        // Repair failed → fail stop: every further append refuses fast.
        assert!(journal.is_poisoned());
        let err = journal.append(&estimate_op(0.5)).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
    }

    #[test]
    fn fault_file_tears_and_flips_deterministically() {
        let plan = JournalFaultPlan {
            seed: 42,
            torn_write_period: Some(3),
            bit_flip_period: None,
        };
        // The same plan over the same appends injects the same faults.
        let run = || {
            let sink = MemorySink::new();
            let handle = sink.clone();
            let mut journal =
                Journal::new(Box::new(FaultFile::new(sink, plan)), FsyncPolicy::Never, 0);
            let results: Vec<bool> = (0..12)
                .map(|i| journal.append(&estimate_op(i as f64)).is_ok())
                .collect();
            (results, handle.contents())
        };
        let (results_a, bytes_a) = run();
        let (results_b, bytes_b) = run();
        assert_eq!(results_a, results_b);
        assert_eq!(bytes_a, bytes_b);
        assert!(results_a.iter().any(|ok| !ok), "plan must tear something");
        assert!(results_a.iter().any(|ok| *ok), "plan must pass something");

        // The journal repaired each torn append by truncating back to the
        // last durable frame, so the surviving bytes hold exactly the
        // accepted records — scans clean, nothing panics.
        let scan = scan_journal(&bytes_a);
        let accepted = results_a.iter().filter(|ok| **ok).count();
        assert_eq!(scan.records.len(), accepted);
        assert!(scan.defect.is_none());

        // Bit flips succeed at append time and only the checksum catches
        // them.
        let plan = JournalFaultPlan {
            seed: 7,
            torn_write_period: None,
            bit_flip_period: Some(4),
        };
        let sink = MemorySink::new();
        let handle = sink.clone();
        let mut fault = FaultFile::new(sink, plan);
        let mut flipped_any = false;
        for i in 0..8 {
            let frame = encode_record(&JournalRecord {
                epoch: 0,
                op: estimate_op(i as f64),
            })
            .unwrap();
            fault.append(&frame).unwrap();
        }
        let (_, flips) = fault.injected();
        flipped_any |= flips > 0;
        assert!(flipped_any, "plan must flip something");
        let scan = scan_journal(&handle.contents());
        assert_eq!(scan.defect, Some(JournalDefect::ChecksumMismatch));
        assert!(scan.records.len() < 8);
    }
}
