//! Crash and recover a durable lvpd registry, end to end.
//!
//! Trains a serving stack, registers it with a daemon configured for
//! durability (checksummed snapshot + write-ahead observe journal), and
//! drives traffic — batches, streamed chunks, an overflowing tenant whose
//! chunk is shed, and a compacting `save`. Then it simulates a crash the
//! nasty way: the process state is dropped on the floor and the journal
//! file is torn mid-record, as if the machine died during an append.
//! Recovery classifies and truncates the damaged tail, replays the
//! durable records over the snapshot, and reproduces the registry
//! **bit-identically** up to the last durable record; re-submitting the
//! one unacknowledged observe lands the registry exactly on the pre-crash
//! state. Everything asserts, and every printed line is deterministic, so
//! CI diffs this output across thread counts.
//!
//! Run with `cargo run --release --example crash_recovery`.

use lvp::prelude::*;
use lvp_core::{checksum64, to_json, ServingArtifact};
use lvp_server::{Daemon, DaemonConfig, DurabilityConfig, MonitorKey, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn estimate_request(key: &MonitorKey, estimate: f64) -> Request {
    let mut req = Request::targeted("observe", key);
    req.estimate = Some(estimate);
    req
}

fn main() {
    let mut rng = StdRng::seed_from_u64(4242);

    // --- Training side: fit the stack and bundle it --------------------
    println!("training model + performance predictor...");
    let df = lvp::datasets::heart(900, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_logistic_regression(&train, &mut rng).unwrap());
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let monitor = BatchMonitor::new(predictor, MonitorPolicy::default()).unwrap();
    let artifact = ServingArtifact::from_monitor(&monitor);

    // --- A durable daemon: snapshot + write-ahead journal ---------------
    let dir = std::env::temp_dir().join(format!("lvpd-crash-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let durability = DurabilityConfig::in_dir(&dir);
    let snapshot_path = durability.snapshot_path.clone().unwrap();
    let journal_path = durability.journal_path.clone().unwrap();
    let config = DaemonConfig {
        queue_capacity: 2,
        ..DaemonConfig::default()
    };
    let (daemon, report) = Daemon::recover(config, durability.clone()).unwrap();
    assert!(!report.snapshot_loaded);
    println!("durable daemon up (journal fsync=always)");

    let key = MonitorKey {
        tenant: "acme".to_string(),
        model: "heart-risk".to_string(),
        version: "v1".to_string(),
    };
    let mut req = Request::targeted("register", &key);
    req.artifact = Some(artifact);
    assert!(daemon.handle_request(req).is_ok());
    println!("registered {key}");

    // Full output batches, journaled before they are applied.
    let proba = model.predict_proba(&serving);
    let rows: Vec<Vec<f64>> = (0..proba.rows()).map(|i| proba.row(i).to_vec()).collect();
    for (label, slice) in [("#0", &rows[..140]), ("#1", &rows[140..280])] {
        let mut req = Request::targeted("observe", &key);
        req.outputs = Some(slice.to_vec());
        let resp = daemon.handle_request(req);
        assert!(resp.is_ok(), "observe {label}: {:?}", resp.message);
        println!(
            "batch {label}: estimated score {:.3}",
            resp.report.unwrap().estimate
        );
    }

    // Stream a window, overflow the 2-chunk budget (the shed is journaled
    // as its window-poisoning effect), finish degraded, then recover with
    // a clean window.
    for chunk in rows[280..].chunks(60).take(3) {
        let mut req = Request::targeted("observe", &key);
        req.chunk = Some(chunk.to_vec());
        let resp = daemon.handle_request(req);
        if resp.is_shed() {
            println!("chunk shed: {}", resp.message.unwrap());
        }
    }
    let resp = daemon.handle_request(Request::targeted("finish", &key));
    assert!(resp.report.as_ref().unwrap().degraded);
    println!("overflowed window finished degraded (shed, not dropped)");

    // Compact: snapshot the registry and truncate the journal.
    let mut req = Request::new("save");
    req.path = Some(snapshot_path.to_string_lossy().into_owned());
    let resp = daemon.handle_request(req);
    assert!(resp.is_ok(), "save: {:?}", resp.message);
    assert!(resp.message.unwrap().contains("journal compacted"));
    println!("compacting save: snapshot written, journal truncated");

    // Post-compaction traffic; every record is fsynced before the ack.
    for i in 0..6 {
        assert!(daemon
            .handle_request(estimate_request(&key, 0.55 + 0.01 * i as f64))
            .is_ok());
    }
    let durable_state = to_json(&daemon.snapshot()).unwrap();
    // One more observe is acknowledged...
    assert!(daemon.handle_request(estimate_request(&key, 0.42)).is_ok());
    let final_state = to_json(&daemon.snapshot()).unwrap();

    // --- The crash -------------------------------------------------------
    // The process dies: in-memory state vanishes, and the last journal
    // append is torn seven bytes short, as a real crash mid-write would.
    drop(daemon);
    let journal = std::fs::read(&journal_path).unwrap();
    std::fs::write(&journal_path, &journal[..journal.len() - 7]).unwrap();
    println!("simulated crash: process gone, journal torn mid-record");

    // --- Recovery --------------------------------------------------------
    let (recovered, report) = Daemon::recover(config, durability).unwrap();
    println!("recovery: {}", report.summary());
    assert_eq!(report.tail_defect.as_deref(), Some("torn record payload"));
    // The whole partial record is truncated, not just the seven cut bytes.
    assert!(report.truncated_tail_bytes > 7);
    let recovered_state = to_json(&recovered.snapshot()).unwrap();
    assert_eq!(recovered_state, durable_state);
    println!(
        "registry fingerprint {:016x} matches the last durable boundary",
        checksum64(recovered_state.as_bytes())
    );

    // The torn record's observe was never acknowledged; re-submitting it
    // lands the registry exactly on the pre-crash state.
    assert!(recovered
        .handle_request(estimate_request(&key, 0.42))
        .is_ok());
    assert_eq!(to_json(&recovered.snapshot()).unwrap(), final_state);
    println!(
        "re-submitted the unacknowledged observe: fingerprint {:016x} matches pre-crash state",
        checksum64(final_state.as_bytes())
    );

    // Shutdown compacts: final snapshot written, journal truncated, and
    // the snapshot restores standalone.
    recovered.request_shutdown();
    assert_eq!(std::fs::metadata(&journal_path).unwrap().len(), 0);
    let standalone = Daemon::with_state_file(config, &snapshot_path).unwrap();
    assert_eq!(to_json(&standalone.snapshot()).unwrap(), final_state);
    println!("shutdown compacted the journal; snapshot restores standalone");

    let _ = std::fs::remove_dir_all(&dir);
    println!("crash recovery example passed");
}
