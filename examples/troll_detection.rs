//! Adversarial-text scenario (§6.1.1, tweets dataset): attackers re-spell
//! trolling tweets in leetspeak to evade a deployed classifier. The
//! performance predictor — trained on synthetic leetspeak corruption —
//! estimates how far the classifier's accuracy degrades on each incoming
//! batch.
//!
//! Run with `cargo run --release --example troll_detection`.

use lvp::prelude::*;
use lvp_corruptions::AdversarialLeetspeak;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);

    println!("training the troll-detection model on tweets...");
    let df = lvp::datasets::tweets(2_000, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_logistic_regression(&train, &mut rng).unwrap());
    println!(
        "held-out test accuracy: {:.3}",
        lvp::models::model_accuracy(model.as_ref(), &test)
    );

    println!("fitting performance predictor against adversarial text...");
    let errors = lvp::corruptions::text_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();

    // Simulate attack waves of increasing intensity by converting a growing
    // share of serving tweets to leetspeak.
    let attack = AdversarialLeetspeak::all_text(serving.schema());
    println!(
        "\n{:<22} {:>10} {:>10} {:>8}",
        "batch", "estimated", "true", "|err|"
    );
    let est = predictor.predict(&serving).unwrap();
    let truth = lvp::models::model_accuracy(model.as_ref(), &serving);
    println!(
        "{:<22} {:>10.3} {:>10.3} {:>8.3}",
        "no attack",
        est,
        truth,
        (est - truth).abs()
    );
    for wave in 1..=4 {
        let mut batch = serving.clone();
        // Layer the attack: each wave re-corrupts, increasing coverage.
        for _ in 0..wave {
            batch = attack.corrupt(&batch, &mut rng);
        }
        let est = predictor.predict(&batch).unwrap();
        let truth = lvp::models::model_accuracy(model.as_ref(), &batch);
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>8.3}",
            format!("attack wave {wave}"),
            est,
            truth,
            (est - truth).abs()
        );
    }
}
