//! Quickstart: learn a performance predictor for a black box model and use
//! it to estimate accuracy on unseen, unlabeled serving data.
//!
//! Run with `cargo run --release --example quickstart`.

use lvp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Source data: the income dataset. In production this would be the
    //    data your team collected and labeled.
    println!("generating income data and training a black box model...");
    let df = lvp::datasets::income(2_400, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);

    // 2. A black box model: we can only call predict_proba on it.
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_logistic_regression(&train, &mut rng).unwrap());
    let test_accuracy = lvp::models::model_accuracy(model.as_ref(), &test);
    println!("model test accuracy: {test_accuracy:.3}");

    // 3. Declare the error types we might see in production. We specify
    //    *types*, never magnitudes — the predictor learns those itself.
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());

    // 4. Algorithm 1: learn the performance predictor from synthetically
    //    corrupted copies of the held-out test data.
    println!("fitting performance predictor (Algorithm 1)...");
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();

    // 5. Algorithm 2: estimate the score on unseen serving batches — first
    //    clean, then increasingly corrupted. We print the true accuracy
    //    next to the estimate only because this demo has labels; the
    //    predictor never sees them.
    println!(
        "\n{:<28} {:>10} {:>10} {:>8}",
        "serving batch", "estimated", "true", "|err|"
    );
    let clean_est = predictor.predict(&serving).unwrap();
    let clean_true = lvp::models::model_accuracy(model.as_ref(), &serving);
    println!(
        "{:<28} {:>10.3} {:>10.3} {:>8.3}",
        "clean",
        clean_est,
        clean_true,
        (clean_est - clean_true).abs()
    );

    for gen in &errors {
        let corrupted = gen.corrupt(&serving, &mut rng);
        let est = predictor.predict(&corrupted).unwrap();
        let truth = lvp::models::model_accuracy(model.as_ref(), &corrupted);
        println!(
            "{:<28} {:>10.3} {:>10.3} {:>8.3}",
            gen.name(),
            est,
            truth,
            (est - truth).abs()
        );
    }

    // 6. No tuned alarm threshold needed: the predictor brackets its own
    //    estimate with a calibrated 90% interval, and the natural alarm
    //    question is whether the retained test score escaped it.
    let interval = predictor.predict_interval(&serving).unwrap();
    println!(
        "\n90% interval on clean data: [{:.3}, {:.3}] (point {:.3})",
        interval.lo, interval.hi, interval.point
    );
    println!(
        "test score {:.3} inside the serving interval: {}",
        predictor.test_score(),
        interval.contains(predictor.test_score())
    );
}
