//! Calibrated interval monitoring: alarms without a hand-tuned threshold.
//!
//! The point-estimate monitor needs a tuned cutoff ("alarm on an 8% drop")
//! wide enough to absorb the predictor's own calibration noise. Under the
//! interval alarm policy the predictor brackets every serving batch with a
//! calibrated 90% [`ScoreInterval`] and the monitor simply asks whether
//! the retained test score still sits inside it — drift is whatever the
//! interval can no longer explain.
//!
//! CI runs this example twice (`RAYON_NUM_THREADS=1` and `4`) and diffs
//! the stdout byte-for-byte: every interval below is deterministic at any
//! thread count.
//!
//! Run with `cargo run --release --example interval_monitoring`.
//!
//! [`ScoreInterval`]: lvp_core::ScoreInterval

use lvp::prelude::*;
use lvp_core::{BatchMonitor, MonitorPolicy, PerformancePredictor};
use lvp_corruptions::Scaling;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(321);

    // --- Training side -------------------------------------------------
    println!("training model + predictor...");
    let df = lvp::datasets::heart(2_000, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_gbdt(&train, &mut rng).unwrap());
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    println!(
        "test score {:.3}; conformal calibration on {} held-out residuals",
        predictor.test_score(),
        predictor.calibration_residuals().map_or(0, <[f64]>::len)
    );

    // --- Serving side --------------------------------------------------
    // No threshold to tune: the default policy switched to interval mode.
    let test_score = predictor.test_score();
    let mut monitor =
        BatchMonitor::new(predictor, MonitorPolicy::default().with_interval_alarm()).unwrap();

    // A two-week batch stream: days 6-9 ship a unit conversion bug that
    // rescales every numeric vital (a broken ETL stage, not one column).
    let bug = Scaling::for_columns(serving.schema().numeric_columns());
    println!(
        "\n{:<5} {:>8} {:>8} {:>8} {:>8} {:>6} {:>8} {:>8}",
        "day", "lo", "point", "hi", "width", "raw", "smooth", "alarm"
    );
    for day in 1..=14 {
        let batch = serving.sample_n(250, &mut rng);
        let batch = if (6..=9).contains(&day) {
            bug.corrupt(&batch, &mut rng)
        } else {
            batch
        };
        let report = monitor.observe(&batch).unwrap();
        let iv = report.interval.expect("interval policy reports carry one");
        println!(
            "{:<5} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>6} {:>8} {:>8}",
            day,
            iv.lo,
            iv.point,
            iv.hi,
            iv.width(),
            report.raw_violation,
            report.smoothed_violation,
            if report.alarm { "PAGE!" } else { "-" }
        );
    }
    let alarms = monitor.history().iter().filter(|r| r.alarm).count();
    let violations = monitor
        .history()
        .iter()
        .filter_map(|r| r.interval)
        .filter(|iv| !iv.contains(test_score))
        .count();
    println!(
        "\n{alarms} alarming batches, {violations} coverage violations out of {}",
        monitor.history().len()
    );

    // --- v4 artifact round trip ----------------------------------------
    // The conformal calibration state ships inside the version-4 artifacts,
    // so a restored monitor reproduces the same intervals bit-for-bit.
    let predictor_json = serde_json::to_string(&monitor.predictor().to_artifact()).unwrap();
    let monitor_json = serde_json::to_string(&monitor.to_artifact()).unwrap();
    let restored_predictor = PerformancePredictor::from_artifact(
        serde_json::from_str(&predictor_json).unwrap(),
        Arc::clone(&model),
    )
    .unwrap();
    let mut restored = BatchMonitor::from_artifact(
        serde_json::from_str(&monitor_json).unwrap(),
        restored_predictor,
    )
    .unwrap();
    let day15 = serving.sample_n(250, &mut rng);
    let live = monitor.observe(&day15).unwrap();
    let back = restored.observe(&day15).unwrap();
    println!(
        "day 15 after restore: intervals bit-identical across the restart: {}",
        serde_json::to_string(&live).unwrap() == serde_json::to_string(&back).unwrap()
    );
}
