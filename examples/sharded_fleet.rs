//! Sharded fleet monitoring: four serving shards sketch their traffic
//! independently and a central monitor folds the shard sketches into one
//! fleet-level report.
//!
//! Each shard streams its rows through a fixed-memory [`BatchSketch`]
//! (never materializing the batch), and because the sketch merge is an
//! exact commutative monoid, the merged fleet report is **bit-identical**
//! to the report a single monitor streaming every row in order would have
//! produced — at any thread count, for any chunking. This example asserts
//! exactly that, prints the per-window verdicts, runs the whole pipeline
//! twice and asserts the outputs are byte-identical. CI additionally diffs
//! the full stdout across `RAYON_NUM_THREADS=1` and `=4`.
//!
//! Run with `cargo run --release --example sharded_fleet`.

use lvp::prelude::*;
use lvp_core::BatchSketch;
use lvp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::Arc;

const SHARDS: usize = 4;
const WINDOWS: usize = 8;
const CHUNK_ROWS: usize = 23;

fn run_pipeline() -> (Vec<String>, String) {
    let registry = Registry::new();
    let mut rng = StdRng::seed_from_u64(7_020);

    // --- Train the model and its performance predictor --------------------
    let df = lvp::datasets::income(2_000, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_logistic_regression(&train, &mut rng).unwrap());
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();

    let mut monitor = BatchMonitor::new(
        predictor,
        MonitorPolicy {
            threshold: 0.2,
            consecutive_violations: 2,
            ewma_alpha: 0.5,
            ..MonitorPolicy::default()
        },
    )
    .unwrap();
    monitor.attach_telemetry(&registry);
    monitor.retain_reference_outputs(&test).unwrap();

    // --- Fleet loop: sketch per shard, merge centrally --------------------
    let mut lines = Vec::new();
    for window in 0..WINDOWS {
        // One window of fleet traffic. Later windows drift: an upstream
        // units bug scales the numeric columns of an increasing fraction
        // of rows by 100× — the kind of error the predictor trained on.
        let mut traffic = serving.sample_n(400, &mut rng);
        let broken_rows = traffic.n_rows() * window / WINDOWS;
        for col in 0..3 {
            let values = traffic.column_mut(col).as_numeric_mut().unwrap();
            for v in values.iter_mut().take(broken_rows).flatten() {
                *v *= 100.0;
            }
        }
        let outputs = model.predict_proba(&traffic);

        // Each shard sketches its quarter of the traffic concurrently, in
        // chunks, without ever holding the batch.
        let rows: Vec<usize> = (0..outputs.rows()).collect();
        let shard_rows: Vec<&[usize]> = rows.chunks(rows.len().div_ceil(SHARDS)).collect();
        let shards: Vec<BatchSketch> = (0..shard_rows.len())
            .into_par_iter()
            .map(|s| {
                let mut sketch = BatchSketch::new(outputs.cols());
                for chunk in shard_rows[s].chunks(CHUNK_ROWS) {
                    sketch
                        .observe_chunk(&outputs.select_rows(chunk))
                        .expect("shard chunk matches the model's class count");
                }
                sketch
            })
            .collect();

        // Reference: one stream over the same rows, in order.
        for chunk in rows.chunks(CHUNK_ROWS) {
            monitor
                .observe_output_chunk(&outputs.select_rows(chunk))
                .unwrap();
        }
        let single = monitor.finish_window().unwrap();

        // Fleet-level report folded from the shard sketches.
        let merged = monitor.merge_shard_sketches(&shards).unwrap();
        assert_eq!(
            single.estimate.to_bits(),
            merged.estimate.to_bits(),
            "merged shards must report bit-identically to the single stream"
        );
        assert_eq!(single.telemetry.per_class_ks, merged.telemetry.per_class_ks);

        let worst_drift = merged
            .telemetry
            .per_class_ks
            .iter()
            .map(|d| d.statistic)
            .fold(0.0f64, f64::max);
        lines.push(format!(
            "window {window}: estimate {:.3} (smoothed {:.3}), max KS drift {:.3}, \
             alarm: {}",
            merged.estimate, merged.smoothed, worst_drift, merged.alarm
        ));
    }

    let alarms = monitor.history().iter().filter(|r| r.alarm).count();
    assert!(
        alarms > 0,
        "the heavily drifted late windows must raise an alarm"
    );
    lines.push(format!(
        "fleet: {SHARDS} shards, {WINDOWS} windows, {} reports scored, {alarms} alarming",
        monitor.batches_seen()
    ));

    let telemetry = registry.snapshot().deterministic().to_json().unwrap();
    (lines, telemetry)
}

fn main() {
    println!("monitoring a {SHARDS}-shard fleet (run 1 of 2)...");
    let (lines, telemetry) = run_pipeline();
    for line in &lines {
        println!("{line}");
    }

    println!("\nmonitoring a {SHARDS}-shard fleet (run 2 of 2)...");
    let (lines2, telemetry2) = run_pipeline();
    assert_eq!(lines, lines2, "reports must be byte-identical across runs");
    assert_eq!(
        telemetry, telemetry2,
        "deterministic telemetry views must be byte-identical across runs"
    );
    println!(
        "fleet reports and telemetry are byte-identical across runs \
         ({} bytes of telemetry)",
        telemetry.len()
    );
    println!("sharded fleet run OK");
}
