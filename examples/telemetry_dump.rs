//! End-to-end telemetry dump for the serving stack.
//!
//! Instruments every layer — the black box model (call counts, latency,
//! encoding-cache counters), the Algorithm 1 generation engine (per-phase
//! timings), and the batch monitor (scores, streaks, alarms, per-class
//! drift) — into one registry, then exports the snapshot as JSON and as a
//! text table. Asserts that the JSON round-trips exactly, which CI relies
//! on.
//!
//! Run with `cargo run --release --example telemetry_dump`.

use lvp::prelude::*;
use lvp_core::{BatchMonitor, MonitorPolicy, PerformancePredictor};
use lvp_telemetry::{Registry, TelemetrySnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let registry = Registry::new();
    let mut rng = StdRng::seed_from_u64(7_654);

    // --- Training side, instrumented ------------------------------------
    println!("training model + predictor (instrumented)...");
    let df = lvp::datasets::income(1_500, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);
    let mut model = lvp::models::train_logistic_regression(&train, &mut rng).unwrap();
    model.attach_telemetry(&registry);
    let model: Arc<dyn BlackBoxModel> = Arc::from(model);
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit_instrumented(
        model,
        &test,
        &errors,
        &PredictorConfig::fast(),
        &mut rng,
        Some(&registry),
    )
    .unwrap();

    // --- Serving side, instrumented --------------------------------------
    let mut monitor = BatchMonitor::new(
        predictor,
        MonitorPolicy {
            threshold: 0.1,
            consecutive_violations: 2,
            ewma_alpha: 0.6,
            ..MonitorPolicy::default()
        },
    )
    .unwrap();
    monitor.attach_telemetry(&registry);
    monitor.retain_reference_outputs(&test).unwrap();

    println!("\nobserving 8 serving batches:");
    for day in 1..=8 {
        let batch = serving.sample_n(200, &mut rng);
        let report = monitor.observe(&batch).unwrap();
        let worst_drift = report
            .telemetry
            .per_class_ks
            .iter()
            .map(|d| d.p_value)
            .fold(f64::INFINITY, f64::min);
        println!(
            "  day {day}: estimate={:.3} smoothed={:.3} streak={} min drift p={:.3}",
            report.estimate, report.smoothed, report.telemetry.violation_streak, worst_drift
        );
    }

    // --- Export -----------------------------------------------------------
    let snapshot = registry.snapshot();
    println!("\n=== telemetry snapshot ===\n{}", snapshot.render_text());

    let json = snapshot.to_json().expect("snapshot serializes");
    println!("JSON export: {} bytes", json.len());
    let restored = TelemetrySnapshot::from_json(&json).expect("snapshot parses back");
    assert_eq!(restored, snapshot, "JSON round trip must be lossless");
    assert_eq!(
        restored.to_json().unwrap(),
        json,
        "re-serialization must be byte-identical"
    );

    // The deterministic view is the contract replayed runs are compared on.
    let det = snapshot.deterministic();
    assert!(det.volatile.is_empty());
    assert_eq!(
        TelemetrySnapshot::from_json(&det.to_json().unwrap()).unwrap(),
        det
    );
    println!(
        "deterministic view: {} counters, {} gauges, {} histograms",
        det.counters.len(),
        det.gauges.len(),
        det.histograms.len()
    );
    println!("round-trip OK");
}
