//! Image-pipeline scenario (§6.1.1, Figure 2(d)): a convolutional network
//! classifies handwritten digits; a camera fault adds sensor noise and a
//! mis-mounted scanner rotates inputs. The validator decides per batch
//! whether the convnet's predictions are still reliable.
//!
//! Run with `cargo run --release --example image_pipeline`.

use lvp::prelude::*;
use lvp_corruptions::{ImageNoise, ImageRotation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);

    println!("training the convnet on digits (3 vs 5)...");
    let df = lvp::datasets::digits(1_200, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_convnet(&train, false, &mut rng).unwrap());
    println!(
        "held-out test accuracy: {:.3}",
        lvp::models::model_accuracy(model.as_ref(), &test)
    );

    println!("fitting performance validator for noise + rotation (t = 10%)...");
    let errors = lvp::corruptions::image_suite(test.schema());
    let validator = PerformanceValidator::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &ValidatorConfig::fast(0.10),
        &mut rng,
    )
    .unwrap();

    let noise = ImageNoise::all_images(serving.schema());
    let rotation = ImageRotation::all_images(serving.schema());

    println!(
        "\n{:<18} {:>10} {:>12} {:>10}",
        "batch", "true acc", "confidence", "verdict"
    );
    let cases: Vec<(&str, lvp_dataframe::DataFrame)> = vec![
        ("clean", serving.clone()),
        ("sensor noise", noise.corrupt(&serving, &mut rng)),
        ("rotated scans", rotation.corrupt(&serving, &mut rng)),
        (
            "noise + rotation",
            rotation.corrupt(&noise.corrupt(&serving, &mut rng), &mut rng),
        ),
    ];
    for (name, batch) in cases {
        let outcome = validator.validate(&batch).unwrap();
        let truth = lvp::models::model_accuracy(model.as_ref(), &batch);
        println!(
            "{:<18} {:>10.3} {:>12.3} {:>10}",
            name,
            truth,
            outcome.confidence,
            if outcome.within_threshold {
                "TRUST"
            } else {
                "ALARM"
            },
        );
    }
}
