//! Cloud-hosted AutoML scenario (§6.3.2): the model is trained and hosted
//! by a third-party service. We never see its learning algorithm or feature
//! map — only an opaque handle that serves batched predictions. The
//! performance predictor is trained purely against that endpoint.
//!
//! Run with `cargo run --release --example cloud_automl`.

use lvp::prelude::*;
use lvp_corruptions::Mixture;
use lvp_models::cloud::CloudModelService;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);

    println!("uploading income data to the cloud service and running AutoML...");
    let df = lvp::datasets::income(2_000, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);

    let service = CloudModelService::new();
    let handle = service.train_and_deploy(&train, 42).unwrap();
    let remote: Arc<dyn BlackBoxModel> = Arc::new(service.remote_model(handle).unwrap());
    println!(
        "deployed; held-out test accuracy via the endpoint: {:.3}",
        lvp::models::model_accuracy(remote.as_ref(), &test)
    );

    println!("fitting performance predictor against the remote endpoint...");
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&remote),
        &test,
        &errors,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();

    // Serve mixture-corrupted batches (the Figure 7 protocol) and compare
    // the predicted against the true accuracy.
    let mixture = Mixture::from_boxes(lvp::corruptions::standard_tabular_suite(serving.schema()));
    println!(
        "\n{:<10} {:>10} {:>10} {:>8}",
        "batch", "estimated", "true", "|err|"
    );
    let mut abs_errors = Vec::new();
    for batch_id in 1..=8 {
        let batch = mixture.corrupt(&serving.sample_n(300, &mut rng), &mut rng);
        let est = predictor.predict(&batch).unwrap();
        let truth = lvp::models::model_accuracy(remote.as_ref(), &batch);
        abs_errors.push((est - truth).abs());
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>8.3}",
            format!("batch {batch_id}"),
            est,
            truth,
            (est - truth).abs()
        );
    }
    let mae = abs_errors.iter().sum::<f64>() / abs_errors.len() as f64;
    println!("\nMAE of the predictor against the cloud model: {mae:.4}");
    println!(
        "cloud billing meter: {} prediction requests, {} rows scored",
        service.requests_served(),
        service.rows_scored()
    );
}
