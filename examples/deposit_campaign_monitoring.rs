//! The paper's motivating scenario (§1): an engineering team consumes
//! predictions from an outsourced model and must decide, batch by batch,
//! whether to trust them — without access to ground-truth labels.
//!
//! A bank marketing model scores daily batches of customers. On day 4 an
//! engineer "accidentally" ships a preprocessing bug that records call
//! durations in milliseconds instead of seconds (a scaling error), and on
//! day 6 a broken join starts nulling out the `poutcome` and `duration`
//! columns. The deployed performance validator must flag the broken days.
//!
//! Run with `cargo run --release --example deposit_campaign_monitoring`.

use lvp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    println!("training the deposit-subscription model...");
    let df = lvp::datasets::bank(3_000, &mut rng);
    let (source, serving_pool) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_gbdt(&train, &mut rng).unwrap());
    println!(
        "held-out test accuracy: {:.3}",
        lvp::models::model_accuracy(model.as_ref(), &test)
    );

    // The team expects missing values and unit bugs; it encodes that
    // knowledge as error generators and trains a validator with a 5%
    // acceptable quality loss.
    println!("fitting performance validator (t = 5%)...");
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let validator = PerformanceValidator::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &ValidatorConfig::fast(0.05),
        &mut rng,
    )
    .unwrap();

    // Day-by-day serving: days 4-5 ship the scaling bug, days 6-7 the
    // missing-value bug.
    let duration_col = test.schema().index_of("duration").expect("column exists");
    let poutcome_col = test.schema().index_of("poutcome").expect("column exists");

    // Unlike the *training-time* generators, which draw a random affected
    // fraction per run, a shipped preprocessing bug is systematic: it hits
    // every row of every batch until someone reverts it.
    let scaling_bug = |batch: &lvp_dataframe::DataFrame| {
        let mut broken = batch.clone();
        let values = broken
            .column_mut(duration_col)
            .as_numeric_mut()
            .expect("duration is numeric");
        for v in values.iter_mut().flatten() {
            *v *= 1_000.0; // milliseconds instead of seconds
        }
        broken
    };
    let missing_bug = |batch: &lvp_dataframe::DataFrame| {
        let mut broken = batch.clone();
        for col in [poutcome_col, duration_col] {
            for row in 0..broken.n_rows() {
                broken.column_mut(col).set_null(row); // broken join
            }
        }
        broken
    };

    println!(
        "\n{:<6} {:>12} {:>12} {:>10} {:>9}",
        "day", "true acc", "confidence", "verdict", "actual"
    );
    for day in 1..=8 {
        let batch = serving_pool.sample_n(500, &mut rng);
        let batch = match day {
            4 | 5 => scaling_bug(&batch),
            6 | 7 => missing_bug(&batch),
            _ => batch,
        };
        let outcome = validator.validate(&batch).unwrap();
        let true_acc = lvp::models::model_accuracy(model.as_ref(), &batch);
        let actually_ok = true_acc >= (1.0 - 0.05) * validator.test_score();
        println!(
            "{:<6} {:>12.3} {:>12.3} {:>10} {:>9}",
            day,
            true_acc,
            outcome.confidence,
            if outcome.within_threshold {
                "TRUST"
            } else {
                "ALARM"
            },
            if actually_ok { "ok" } else { "broken" },
        );
    }
    println!("\n(the validator sees no labels — 'true acc' is shown only for the demo)");
}
