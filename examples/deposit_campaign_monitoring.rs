//! The paper's motivating scenario (§1): an engineering team consumes
//! predictions from an outsourced model and must decide, batch by batch,
//! whether to trust them — without access to ground-truth labels.
//!
//! A bank marketing model scores daily batches of customers. On day 4 an
//! engineer "accidentally" ships a preprocessing bug that records call
//! durations in milliseconds instead of seconds (a scaling error), and on
//! day 6 a broken join starts nulling out the `poutcome` column. The
//! deployed performance validator must flag exactly the broken days.
//!
//! Run with `cargo run --release --example deposit_campaign_monitoring`.

use lvp::prelude::*;
use lvp_corruptions::{MissingValues, Scaling};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    println!("training the deposit-subscription model...");
    let df = lvp::datasets::bank(3_000, &mut rng);
    let (source, serving_pool) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_gbdt(&train, &mut rng).unwrap());
    println!(
        "held-out test accuracy: {:.3}",
        lvp::models::model_accuracy(model.as_ref(), &test)
    );

    // The team expects missing values and unit bugs; it encodes that
    // knowledge as error generators and trains a validator with a 5%
    // acceptable quality loss.
    println!("fitting performance validator (t = 5%)...");
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let validator = PerformanceValidator::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &ValidatorConfig::fast(0.05),
        &mut rng,
    )
    .unwrap();

    // Day-by-day serving: days 4-5 ship the scaling bug, days 6-7 the
    // missing-value bug.
    let duration_col = test.schema().index_of("duration").expect("column exists");
    let poutcome_col = test.schema().index_of("poutcome").expect("column exists");
    let scaling_bug = Scaling::for_columns(vec![duration_col]);
    let missing_bug = MissingValues::for_columns(vec![poutcome_col]);

    println!("\n{:<6} {:>12} {:>12} {:>10} {:>9}", "day", "true acc", "confidence", "verdict", "actual");
    for day in 1..=8 {
        let batch = serving_pool.sample_n(250, &mut rng);
        let batch = match day {
            4 | 5 => scaling_bug.corrupt(&batch, &mut rng),
            6 | 7 => missing_bug.corrupt(&batch, &mut rng),
            _ => batch,
        };
        let outcome = validator.validate(&batch).unwrap();
        let true_acc = lvp::models::model_accuracy(model.as_ref(), &batch);
        let actually_ok = true_acc >= (1.0 - 0.05) * validator.test_score();
        println!(
            "{:<6} {:>12.3} {:>12.3} {:>10} {:>9}",
            day,
            true_acc,
            outcome.confidence,
            if outcome.within_threshold { "TRUST" } else { "ALARM" },
            if actually_ok { "ok" } else { "broken" },
        );
    }
    println!("\n(the validator sees no labels — 'true acc' is shown only for the demo)");
}
