//! Continuous monitoring with debounced alarms and predictor persistence.
//!
//! Extends the paper's deployment story (Figure 1b): the predictor is
//! trained once, serialized as an artifact, and shipped to a serving
//! system where a [`BatchMonitor`] watches the live batch stream. A
//! transient glitch in one batch does not page anyone; a sustained
//! preprocessing bug does.
//!
//! Run with `cargo run --release --example continuous_monitoring`.
//!
//! [`BatchMonitor`]: lvp_core::BatchMonitor

use lvp::prelude::*;
use lvp_core::{BatchMonitor, MonitorPolicy, PerformancePredictor};
use lvp_corruptions::Scaling;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(321);

    // --- Training side -------------------------------------------------
    println!("training model + predictor...");
    let df = lvp::datasets::heart(2_000, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_gbdt(&train, &mut rng).unwrap());
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();

    // Serialize the artifact — this is what gets shipped to the serving
    // fleet (the model itself stays wherever it is hosted).
    let json = serde_json::to_string(&predictor.to_artifact()).unwrap();
    println!(
        "serialized predictor artifact: {} bytes of JSON",
        json.len()
    );

    // --- Serving side ----------------------------------------------------
    let artifact: lvp_core::PredictorArtifact = serde_json::from_str(&json).unwrap();
    let restored = PerformancePredictor::from_artifact(artifact, Arc::clone(&model)).unwrap();
    let mut monitor = BatchMonitor::new(
        restored,
        MonitorPolicy {
            threshold: 0.08,
            consecutive_violations: 2,
            ewma_alpha: 0.6,
            ..MonitorPolicy::default()
        },
    )
    .unwrap();

    // A two-week batch stream: days 6-9 ship a unit bug in blood pressure.
    let ap_hi = serving.schema().index_of("ap_hi").expect("column exists");
    let bug = Scaling::for_columns(vec![ap_hi]);
    println!(
        "\n{:<5} {:>10} {:>10} {:>6} {:>8} {:>8}",
        "day", "estimate", "smoothed", "raw", "smooth", "alarm"
    );
    for day in 1..=14 {
        let batch = serving.sample_n(250, &mut rng);
        let batch = if (6..=9).contains(&day) {
            bug.corrupt(&batch, &mut rng)
        } else {
            batch
        };
        let report = monitor.observe(&batch).unwrap();
        println!(
            "{:<5} {:>10.3} {:>10.3} {:>6} {:>8} {:>8}",
            day,
            report.estimate,
            report.smoothed,
            report.raw_violation,
            report.smoothed_violation,
            if report.alarm { "PAGE!" } else { "-" }
        );
    }
    let alarms = monitor.history().iter().filter(|r| r.alarm).count();
    println!(
        "\n{alarms} alarming batches out of {}",
        monitor.history().len()
    );
}
