//! One tenant's full lvpd lifecycle over a real loopback socket.
//!
//! Trains a serving stack, bundles it into a [`ServingArtifact`], then
//! drives a live `lvpd` daemon end to end the way a serving system would:
//! `register` the deployment, `observe` full output batches and streamed
//! chunks, `finish` the window, page through `history`, scrape
//! deterministic `metrics`, and shut the daemon down cleanly over the
//! wire. Everything asserts, so CI can run it as a smoke test; the daemon
//! listens on an ephemeral port, so it never collides with another run.
//!
//! Run with `cargo run --release --example lvpd_demo`.

use lvp::prelude::*;
use lvp_core::ServingArtifact;
use lvp_server::{Client, Daemon, DaemonConfig, MonitorKey, Request, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(4242);

    // --- Training side: fit the stack and bundle it --------------------
    println!("training model + performance predictor...");
    let df = lvp::datasets::heart(1_500, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_logistic_regression(&train, &mut rng).unwrap());
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let monitor = BatchMonitor::new(predictor, MonitorPolicy::default()).unwrap();
    let artifact = ServingArtifact::from_monitor(&monitor);

    // --- Serving side: a live daemon on an ephemeral port ---------------
    let daemon = Arc::new(Daemon::new(DaemonConfig::default()));
    let server = Server::spawn(Arc::clone(&daemon), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    println!("lvpd listening on {addr}");
    let mut client = Client::connect(addr).unwrap();

    let key = MonitorKey {
        tenant: "acme".to_string(),
        model: "heart-risk".to_string(),
        version: "v1".to_string(),
    };
    let mut req = Request::targeted("register", &key);
    req.artifact = Some(artifact);
    let resp = client.call(&req).unwrap();
    assert!(resp.is_ok(), "register: {:?}", resp.message);
    println!("registered {}/{}/{}", key.tenant, key.model, key.version);

    // Observe three full serving batches: the tenant's model scores them
    // locally and ships only the output matrices to the daemon.
    let (first, rest) = serving.split_frac(0.33, &mut rng);
    let (second, third) = rest.split_frac(0.5, &mut rng);
    for (label, batch) in [("#0", &first), ("#1", &second)] {
        let proba = model.predict_proba(batch);
        let rows: Vec<Vec<f64>> = (0..proba.rows()).map(|i| proba.row(i).to_vec()).collect();
        let mut req = Request::targeted("observe", &key);
        req.outputs = Some(rows);
        let resp = client.call(&req).unwrap();
        assert!(resp.is_ok(), "observe {label}: {:?}", resp.message);
        let report = resp.report.unwrap();
        assert!(report.estimate.is_finite());
        println!(
            "batch {label}: estimated score {:.3} (alarm: {})",
            report.estimate, report.alarm
        );
    }

    // Stream the third batch as chunks instead, closing the window once
    // every chunk has arrived.
    let proba = model.predict_proba(&third);
    let rows: Vec<Vec<f64>> = (0..proba.rows()).map(|i| proba.row(i).to_vec()).collect();
    for chunk in rows.chunks(64) {
        let mut req = Request::targeted("observe", &key);
        req.chunk = Some(chunk.to_vec());
        let resp = client.call(&req).unwrap();
        assert!(resp.is_ok(), "chunk: {:?}", resp.message);
    }
    let resp = client.call(&Request::targeted("finish", &key)).unwrap();
    assert!(resp.is_ok(), "finish: {:?}", resp.message);
    let report = resp.report.unwrap();
    assert!(report.estimate.is_finite() && !report.degraded);
    println!("streamed batch #2: estimated score {:.3}", report.estimate);

    // Page through the retained history and scrape deterministic metrics.
    let mut req = Request::targeted("history", &key);
    req.limit = Some(2);
    req.offset = Some(1);
    let history = client.call(&req).unwrap().history.unwrap();
    assert_eq!(history.len(), 2);
    assert_eq!(history[0].batch_index, 1);
    println!("history page: batches {:?}", [1, 2]);

    let metrics = client
        .call(&Request::new("metrics"))
        .unwrap()
        .metrics
        .unwrap();
    let prefix = key.metric_prefix();
    assert_eq!(
        metrics
            .counters
            .get(&format!("{prefix}monitor.batches_observed")),
        Some(&3),
    );
    println!("metrics: {} counters exported", metrics.counters.len());

    // Clean shutdown over the wire.
    let resp = client.call(&Request::new("shutdown")).unwrap();
    assert!(resp.is_ok());
    drop(client);
    server.join();
    println!("daemon shut down cleanly; lvpd demo passed");
}
