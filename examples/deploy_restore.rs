//! Deploy, crash, restore: the full serving-stack persistence round trip.
//!
//! The paper deploys the performance predictor *alongside* the model
//! (Figure 1b) so serving systems can raise alarms. Serving processes are
//! long-lived and restart: this example trains the whole stack —
//! predictor, validator and a debounced monitor — serializes each to a
//! JSON artifact, drops the live objects, restores everything in a
//! "fresh process", and asserts the restored stack is *bit-identical* to
//! the original: same estimates, same verdicts, same alarm state. It also
//! demonstrates the input contract: a serving frame with a renamed column
//! is rejected with an error instead of being silently mis-featurized.
//!
//! Run with `cargo run --release --example deploy_restore`.

use lvp::prelude::*;
use lvp_core::{
    load_json, save_json, BatchMonitor, MonitorArtifact, MonitorPolicy, PredictorArtifact,
    ValidatorArtifact,
};
use lvp_dataframe::{CellValue, DataFrameBuilder, Field};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // --- Training side -------------------------------------------------
    println!("training model + predictor + validator...");
    let df = lvp::datasets::heart(2_000, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_gbdt(&train, &mut rng).unwrap());
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let validator = PerformanceValidator::fit(
        Arc::clone(&model),
        &test,
        &errors,
        &ValidatorConfig::fast(0.08),
        &mut rng,
    )
    .unwrap();
    let mut monitor = BatchMonitor::new(
        PerformancePredictor::from_artifact(predictor.to_artifact(), Arc::clone(&model)).unwrap(),
        MonitorPolicy {
            threshold: 0.15,
            consecutive_violations: 2,
            ewma_alpha: 0.6,
            ..MonitorPolicy::default()
        },
    )
    .unwrap();

    // Serve a few batches before the "crash" so the monitor has real
    // EWMA/debounce state worth preserving.
    let mut stream_rng = StdRng::seed_from_u64(100);
    for _ in 0..3 {
        monitor
            .observe(&serving.sample_n(200, &mut stream_rng))
            .unwrap();
    }

    // --- Persist the whole stack ---------------------------------------
    let dir = std::env::temp_dir().join("lvp_deploy_restore");
    std::fs::create_dir_all(&dir).unwrap();
    let predictor_path = dir.join("predictor.json");
    let validator_path = dir.join("validator.json");
    let monitor_path = dir.join("monitor.json");
    save_json(&predictor.to_artifact(), &predictor_path).unwrap();
    save_json(&validator.to_artifact(), &validator_path).unwrap();
    save_json(&monitor.to_artifact(), &monitor_path).unwrap();
    for path in [&predictor_path, &validator_path, &monitor_path] {
        println!(
            "wrote {} ({} bytes)",
            path.display(),
            std::fs::metadata(path).unwrap().len()
        );
    }

    // Reference outputs from the uninterrupted stack.
    let batch = serving.sample_n(200, &mut StdRng::seed_from_u64(101));
    let live_estimate = predictor.predict(&batch).unwrap();
    let live_verdict = validator.validate(&batch).unwrap();
    let live_report = monitor.observe(&batch).unwrap();

    // --- Crash: drop every live object ----------------------------------
    drop(predictor);
    drop(validator);
    drop(monitor);

    // --- Serving side, fresh process -------------------------------------
    println!("\nrestoring from artifacts...");
    let predictor_artifact: PredictorArtifact = load_json(&predictor_path).unwrap();
    let validator_artifact: ValidatorArtifact = load_json(&validator_path).unwrap();
    let monitor_artifact: MonitorArtifact = load_json(&monitor_path).unwrap();
    let restored_predictor =
        PerformancePredictor::from_artifact(predictor_artifact, Arc::clone(&model)).unwrap();
    let restored_validator =
        PerformanceValidator::from_artifact(validator_artifact, Arc::clone(&model)).unwrap();
    let monitor_predictor =
        PerformancePredictor::from_artifact(restored_predictor.to_artifact(), Arc::clone(&model))
            .unwrap();
    let mut restored_monitor =
        BatchMonitor::from_artifact(monitor_artifact, monitor_predictor).unwrap();

    // The same serving batch must produce bit-identical results. The
    // restored monitor replays the post-crash batch and must agree with
    // the uninterrupted monitor's report, debounce streak included.
    let estimate = restored_predictor.predict(&batch).unwrap();
    let verdict = restored_validator.validate(&batch).unwrap();
    assert_eq!(estimate.to_bits(), live_estimate.to_bits());
    assert_eq!(verdict, live_verdict);
    let report = restored_monitor.observe(&batch).unwrap();
    assert_eq!(report, live_report);
    println!("estimate after restore:   {estimate:.6} (bit-identical)");
    println!(
        "verdict after restore:    within_threshold={} confidence={:.4} (identical)",
        verdict.within_threshold, verdict.confidence
    );
    println!(
        "monitor after restore:    batch #{} smoothed={:.4} alarm={} (identical)",
        report.batch_index, report.smoothed, report.alarm
    );

    // --- The input contract ---------------------------------------------
    // A serving frame whose schema drifted (a renamed column here) is
    // rejected before featurization, in release builds too.
    let mut renamed_fields: Vec<Field> = serving.schema().fields().to_vec();
    renamed_fields[0].name = format!("{}_v2", renamed_fields[0].name);
    let mut builder = DataFrameBuilder::new(
        Schema::new(renamed_fields).unwrap(),
        serving.label_names().to_vec(),
    );
    for row in 0..50 {
        let cells: Vec<CellValue> = (0..serving.n_cols())
            .map(|c| serving.cell(row, c))
            .collect();
        builder.push_row(cells, serving.labels()[row]).unwrap();
    }
    let drifted = builder.finish().unwrap();
    let err = restored_predictor.predict(&drifted).unwrap_err();
    println!("\ndrifted frame rejected:   {err}");
    assert!(restored_validator.validate(&drifted).is_err());
    assert!(restored_monitor.observe(&drifted).is_err());

    for path in [&predictor_path, &validator_path, &monitor_path] {
        std::fs::remove_file(path).ok();
    }
    println!("\ndeploy-restore round trip OK");
}
