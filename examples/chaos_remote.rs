//! Chaos run: the full predictor-train + monitoring pipeline against a
//! *flaky* cloud endpoint.
//!
//! A seeded [`FaultPlan`] makes the simulated cloud service inject
//! transient failures, quota rejections, corrupted probability rows,
//! truncated responses and virtual latency on a deterministic per-request
//! schedule. A [`ResilientModel`] wrapper retries with seeded-jitter
//! backoff behind a circuit breaker, and the [`BatchMonitor`] degrades —
//! instead of aborting — on batches whose serving fails terminally
//! (poisoned request keys).
//!
//! Everything is keyed on request *content*, never on wall-clock time or
//! arrival order, so the entire run is reproducible: this example executes
//! the pipeline twice and asserts the deterministic telemetry views are
//! byte-identical. CI additionally diffs the full stdout across
//! `RAYON_NUM_THREADS=1` and `=4`.
//!
//! Run with `cargo run --release --example chaos_remote`.

use lvp::prelude::*;
use lvp_models::cloud::{CloudModelService, FaultPlan, FaultStats};
use lvp_models::BreakerConfig;
use lvp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SERVING_BATCHES: usize = 50;

struct RunSummary {
    deterministic_json: String,
    degraded: usize,
    alarms: usize,
    fault_stats: FaultStats,
    requests: u64,
    virtual_nanos: u64,
    estimates: Vec<String>,
}

fn fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(0xC4A0_5EED);
    // ≥ 20% of requests fail with retryable transport errors, plus
    // corrupted / truncated response bodies that the validators catch.
    plan.transient = 0.15;
    plan.rate_limited = 0.10;
    plan.corrupted = 0.10;
    plan.truncated = 0.05;
    plan.slow = 0.05;
    // A sliver of request keys fails on *every* attempt — these become
    // skipped generation tasks and degraded monitor reports.
    plan.poisoned = 0.05;
    plan.base_latency_nanos = 1_000_000; // 1 virtual ms per request
    plan.slow_latency_nanos = 20_000_000; // +20 virtual ms when slow
    plan.max_faults_per_key = 3; // retry loops always converge
    plan
}

fn run_pipeline() -> RunSummary {
    let registry = Registry::new();
    let mut rng = StdRng::seed_from_u64(2_026);

    // --- Cloud-hosted model with a fault plan installed -------------------
    let df = lvp::datasets::income(1_500, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);

    let service = CloudModelService::new();
    let handle = service.train_and_deploy(&train, 42).unwrap();
    let clock = VirtualClock::new();
    service.install_fault_plan_with_clock(fault_plan(), Some(clock.clone()));

    // --- Resilient client wrapper ----------------------------------------
    let remote = service.remote_model(handle).unwrap();
    let mut resilient = ResilientModel::with_clock(
        Arc::new(remote),
        ResilienceConfig {
            max_attempts: 6,
            breaker: BreakerConfig {
                // Terminal failures here are isolated poisoned keys, not a
                // down endpoint; a high threshold keeps the breaker closed
                // (the state machine itself is exercised in unit tests).
                failure_threshold: 1_000,
                ..BreakerConfig::default()
            },
            ..ResilienceConfig::default()
        },
        clock.clone(),
    );
    resilient.attach_telemetry(&registry);
    let model: Arc<dyn BlackBoxModel> = Arc::new(resilient);

    // --- Algorithm 1 against the flaky endpoint ---------------------------
    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit_instrumented(
        Arc::clone(&model),
        &test,
        &errors,
        &PredictorConfig {
            // Poisoned keys make some generation tasks fail terminally;
            // the fit succeeds as long as 80% of the batches survive.
            min_batch_survival: 0.8,
            ..PredictorConfig::fast()
        },
        &mut rng,
        Some(&registry),
    )
    .expect("fit completes despite injected faults");

    // --- 50-batch monitoring run with graceful degradation ----------------
    let mut monitor = BatchMonitor::new(
        predictor,
        MonitorPolicy {
            threshold: 0.2,
            consecutive_violations: 2,
            ewma_alpha: 0.5,
            ..MonitorPolicy::default()
        },
    )
    .unwrap();
    monitor.attach_telemetry(&registry);
    monitor.retain_reference_outputs(&test).unwrap();

    let mut estimates = Vec::new();
    for _ in 0..SERVING_BATCHES {
        let batch = serving.sample_n(150, &mut rng);
        let report = monitor.observe(&batch).expect("degrades, never aborts");
        if report.degraded {
            // Degraded: estimate withheld, EWMA/streak untouched.
            assert!(report.estimate.is_nan());
            assert!(report.degrade_reason.is_some());
            estimates.push(format!("degraded({})", report.batch_index));
        } else {
            estimates.push(format!("{:.3}", report.estimate));
        }
    }
    let history = monitor.history();
    let degraded = history.iter().filter(|r| r.degraded).count();
    let alarms = history.iter().filter(|r| r.alarm).count();

    RunSummary {
        deterministic_json: registry.snapshot().deterministic().to_json().unwrap(),
        degraded,
        alarms,
        fault_stats: service.fault_stats(),
        requests: service.requests_served(),
        virtual_nanos: clock.now_nanos(),
        estimates,
    }
}

fn main() {
    println!("running the chaos pipeline (run 1 of 2)...");
    let first = run_pipeline();

    let stats = first.fault_stats;
    println!(
        "cloud requests: {} ({} injected faults: {} transient, {} rate-limited, \
         {} corrupted, {} truncated; {} slow, {} clean)",
        first.requests,
        stats.total_faults(),
        stats.transient,
        stats.rate_limited,
        stats.corrupted,
        stats.truncated,
        stats.slow,
        stats.clean
    );
    println!(
        "virtual time elapsed: {} ms (latency + backoff, no wall clock)",
        first.virtual_nanos / 1_000_000
    );
    println!(
        "monitoring: {} batches observed, {} degraded, {} alarming",
        SERVING_BATCHES, first.degraded, first.alarms
    );
    println!("estimates: [{}]", first.estimates.join(", "));

    // The injected fault load is substantial, and the pipeline still
    // completed: retried calls succeeded, poisoned batches degraded.
    assert!(
        stats.total_faults() as f64 >= 0.2 * first.requests as f64,
        "fault plan must stress at least 20% of requests"
    );
    assert!(
        first.degraded > 0,
        "poisoned keys must surface as degraded reports"
    );
    assert!(
        first.degraded < SERVING_BATCHES / 2,
        "most batches must survive"
    );

    println!("\nrunning the chaos pipeline (run 2 of 2)...");
    let second = run_pipeline();
    assert_eq!(
        first.deterministic_json, second.deterministic_json,
        "same seed must yield a byte-identical deterministic telemetry view"
    );
    assert_eq!(first.estimates, second.estimates);
    assert_eq!(first.fault_stats, second.fault_stats);
    assert_eq!(first.virtual_nanos, second.virtual_nanos);
    println!(
        "deterministic telemetry views are byte-identical across runs \
         ({} bytes)",
        first.deterministic_json.len()
    );
    println!("chaos run OK");
}
