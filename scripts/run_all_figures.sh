#!/usr/bin/env bash
# Regenerates every figure of the paper at the given scale (default: small).
# Usage: scripts/run_all_figures.sh [smoke|small|paper] [seed]
set -uo pipefail
SCALE="${1:-small}"
SEED="${2:-42}"
cd "$(dirname "$0")/.."
mkdir -p results logs
for fig in fig2 fig3 fig4 fig5 fig6 fig7 ablations; do
    echo "=== $fig (scale=$SCALE seed=$SEED) ==="
    cargo run --release -p lvp-bench --bin "$fig" -- --scale "$SCALE" --seed "$SEED" \
        2>&1 | tee "logs/$fig.log"
done
echo "=== fig5 --known (scale=$SCALE seed=$SEED) ==="
cargo run --release -p lvp-bench --bin fig5 -- --scale "$SCALE" --seed "$SEED" --known \
    2>&1 | tee "logs/fig5_known.log"
echo "all figures done"
